//! One tenant: a private cube engine, a bounded ingest queue, and a
//! snapshot cell.
//!
//! Writes (pump, close, flush) serialize on the tenant's engine lock;
//! reads never touch that lock — they go through the tenant's
//! [`SnapshotCell`]. The ingest queue is bounded: a full queue is a
//! typed [`ServeError::Overloaded`] back to the producer, never a
//! silent drop, and every record that *was* accepted is ingested by
//! the next pump in arrival order.

use crate::cell::SnapshotCell;
use crate::error::ServeError;
use regcube_core::RunStats;
use regcube_stream::{
    BoxedEngine, CubeSnapshot, EngineConfig, OnlineEngine, RawRecord, UnitReport,
};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A tenant identifier — any non-empty UTF-8 name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

impl TenantId {
    /// The tenant's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for TenantId {
    fn from(s: &str) -> Self {
        TenantId(s.to_owned())
    }
}

impl From<String> for TenantId {
    fn from(s: String) -> Self {
        TenantId(s)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The outcome of pumping one tenant: the unit reports of every unit
/// the pump closed, plus any per-record stream errors (contained here
/// so one tenant's bad records never abort another tenant's pump).
#[derive(Debug)]
pub struct TenantPump {
    /// Whose pump this is.
    pub tenant: TenantId,
    /// One report per unit closed by this pump, in close order.
    pub reports: Vec<UnitReport>,
    /// Stream errors hit while draining (bad records, reorder
    /// overflow); the offending records are accounted for, not lost.
    pub errors: Vec<ServeError>,
}

pub(crate) struct Tenant {
    id: TenantId,
    /// Raw ticks per m-layer unit — used to decide when a queued
    /// record implies closing the open unit (reorder-disabled mode).
    ticks_per_unit: i64,
    capacity: usize,
    queue: Mutex<VecDeque<RawRecord>>,
    engine: Mutex<OnlineEngine<BoxedEngine>>,
    pub(crate) cell: SnapshotCell,
    accepted: AtomicU64,
    rejected: AtomicU64,
}

impl Tenant {
    pub(crate) fn new(
        id: TenantId,
        config: EngineConfig,
        capacity: usize,
    ) -> Result<Self, ServeError> {
        let ticks_per_unit = config.ticks_per_unit as i64;
        let engine = config.build()?;
        let cell = SnapshotCell::new(Arc::new(engine.snapshot()));
        Ok(Tenant {
            id,
            ticks_per_unit,
            capacity,
            queue: Mutex::new(VecDeque::new()),
            engine: Mutex::new(engine),
            cell,
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// Wraps an already-built engine (the checkpoint-restore admission
    /// path). Publishes the restored engine's state as the tenant's
    /// first snapshot, so readers see the recovered cube immediately.
    pub(crate) fn from_engine(
        id: TenantId,
        ticks_per_unit: i64,
        engine: OnlineEngine<BoxedEngine>,
        capacity: usize,
    ) -> Self {
        let cell = SnapshotCell::new(Arc::new(engine.snapshot()));
        Tenant {
            id,
            ticks_per_unit,
            capacity,
            queue: Mutex::new(VecDeque::new()),
            engine: Mutex::new(engine),
            cell,
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    pub(crate) fn id(&self) -> &TenantId {
        &self.id
    }

    /// Writes a durable checkpoint of the tenant's engine, serialized
    /// against writers on the engine lock (the queue is *not* drained
    /// first — pump before checkpointing to capture queued records).
    pub(crate) fn write_checkpoint(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), ServeError> {
        let engine = self.engine.lock().expect("tenant engine lock");
        engine.write_checkpoint(path).map_err(ServeError::from)
    }

    /// Enqueues one record, or rejects it with the typed backpressure
    /// error if the bounded queue is full. Never blocks on the engine
    /// lock — producers stay decoupled from pumping.
    pub(crate) fn try_enqueue(&self, record: &RawRecord) -> Result<(), ServeError> {
        let mut queue = self.queue.lock().expect("tenant queue lock");
        if queue.len() >= self.capacity {
            drop(queue);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                tenant: self.id.clone(),
                capacity: self.capacity,
            });
        }
        queue.push_back(record.clone());
        drop(queue);
        self.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    pub(crate) fn queued(&self) -> usize {
        self.queue.lock().expect("tenant queue lock").len()
    }

    /// Drains the queue into the engine; publishes one snapshot per
    /// closed unit. Takes the engine lock for the whole drain so
    /// concurrent pumps of the same tenant serialize and keep arrival
    /// order.
    pub(crate) fn pump(&self) -> TenantPump {
        let mut engine = self.engine.lock().expect("tenant engine lock");
        let (reports, errors) = self.pump_locked(&mut engine);
        TenantPump {
            tenant: self.id.clone(),
            reports,
            errors,
        }
    }

    /// Pumps, then closes the (possibly empty) open unit and publishes.
    pub(crate) fn close_unit(&self) -> TenantPump {
        let mut engine = self.engine.lock().expect("tenant engine lock");
        let (mut reports, mut errors) = self.pump_locked(&mut engine);
        match engine.close_unit() {
            Ok(report) => {
                self.publish(&engine);
                reports.push(report);
            }
            Err(e) => errors.push(e.into()),
        }
        TenantPump {
            tenant: self.id.clone(),
            reports,
            errors,
        }
    }

    /// Pumps, then flushes the engine (drains any reorder buffer and
    /// closes through the last buffered unit) and publishes the final
    /// boundary.
    pub(crate) fn flush(&self) -> TenantPump {
        let mut engine = self.engine.lock().expect("tenant engine lock");
        let (mut reports, mut errors) = self.pump_locked(&mut engine);
        match engine.flush() {
            Ok(more) => {
                if !more.is_empty() {
                    self.publish(&engine);
                }
                reports.extend(more);
            }
            Err(e) => errors.push(e.into()),
        }
        TenantPump {
            tenant: self.id.clone(),
            reports,
            errors,
        }
    }

    /// Per-tenant statistics: the engine's own counters plus the
    /// serving-layer ones (snapshot reads served, records rejected by
    /// backpressure).
    pub(crate) fn stats(&self) -> RunStats {
        let engine = self.engine.lock().expect("tenant engine lock");
        let mut stats = engine.stats();
        stats.snapshot_reads = self.cell.reads();
        stats.overload_rejections = self.rejected.load(Ordering::Relaxed);
        stats
    }

    pub(crate) fn add_sink(&self, sink: regcube_core::alarm::SharedSink) {
        self.engine
            .lock()
            .expect("tenant engine lock")
            .add_sink(sink);
    }

    /// The body of a pump with the engine lock already held. The queue
    /// is swapped out under its own (briefly held) lock, so producers
    /// keep enqueuing while the drain runs.
    fn pump_locked(
        &self,
        engine: &mut OnlineEngine<BoxedEngine>,
    ) -> (Vec<UnitReport>, Vec<ServeError>) {
        let drained = std::mem::take(&mut *self.queue.lock().expect("tenant queue lock"));
        let mut reports = Vec::new();
        let mut errors = Vec::new();
        let reordering = engine.reordering().is_some();
        for record in drained {
            if reordering {
                // Watermark mode: the engine buffers and decides when
                // units are closable; publish at every ready boundary.
                if let Err(e) = engine.ingest(&record) {
                    errors.push(e.into());
                    continue;
                }
                match engine.drain_ready() {
                    Ok(ready) => {
                        if !ready.is_empty() {
                            self.publish(engine);
                        }
                        reports.extend(ready);
                    }
                    Err(e) => errors.push(e.into()),
                }
            } else {
                // Strict-order mode: a record for a later unit implies
                // closing every unit before it, publishing each.
                let unit = record.tick.div_euclid(self.ticks_per_unit);
                let mut closed_ok = true;
                while engine.open_unit() < unit {
                    match engine.close_unit() {
                        Ok(report) => {
                            self.publish(engine);
                            reports.push(report);
                        }
                        Err(e) => {
                            errors.push(e.into());
                            closed_ok = false;
                            break;
                        }
                    }
                }
                if closed_ok {
                    if let Err(e) = engine.ingest(&record) {
                        errors.push(e.into());
                    }
                }
            }
        }
        (reports, errors)
    }

    /// Publishes the engine's current boundary state. Caller must hold
    /// the engine lock (single-writer contract of the cell).
    fn publish(&self, engine: &OnlineEngine<BoxedEngine>) {
        self.cell.publish(Arc::new(engine.snapshot()));
    }

    pub(crate) fn snapshot(&self) -> Arc<CubeSnapshot> {
        self.cell.load()
    }
}
