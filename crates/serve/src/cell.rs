//! The double-buffered snapshot cell — the reader/writer seam of the
//! serving layer.
//!
//! The workspace forbids `unsafe`, so "lock-free reads" are built from
//! safe parts: two slots, each a tiny critical section around an
//! [`Arc`] clone, and an atomic index saying which slot is live. The
//! writer (the tenant's pump, already serialized by the engine lock)
//! always writes the **inactive** slot and then flips the index with
//! `Release` ordering; readers load the index with `Acquire` and clone
//! the [`Arc`] out of the active slot. In steady state readers and the
//! writer touch *different* slots, so neither waits on the other; the
//! only possible contention is a reader that loaded the index just
//! before two consecutive flips, and even then the wait is bounded by
//! one pointer clone — no reader ever holds a lock across a query, and
//! queries themselves run on the reader's own [`CubeSnapshot`] with no
//! locks at all.

use regcube_stream::CubeSnapshot;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A published-snapshot mailbox: one writer swaps fresh
/// [`CubeSnapshot`]s in at unit boundaries, any number of readers take
/// cheap `Arc` handles out without blocking the writer (or each other,
/// beyond an `Arc` clone).
#[derive(Debug)]
pub struct SnapshotCell {
    slots: [Mutex<Arc<CubeSnapshot>>; 2],
    active: AtomicUsize,
    reads: AtomicU64,
}

impl SnapshotCell {
    /// Creates a cell seeded with an initial snapshot (epoch 0, before
    /// any unit has closed) so readers always observe *something*
    /// consistent, even before the first publication.
    pub fn new(initial: Arc<CubeSnapshot>) -> Self {
        SnapshotCell {
            slots: [Mutex::new(Arc::clone(&initial)), Mutex::new(initial)],
            active: AtomicUsize::new(0),
            reads: AtomicU64::new(0),
        }
    }

    /// Publishes a new snapshot: writes the inactive slot, then flips
    /// the active index. Single-writer by contract — the serving layer
    /// only calls this while holding the tenant's engine lock, which is
    /// what makes the write-inactive-then-flip protocol safe without
    /// compare-and-swap loops.
    pub fn publish(&self, snapshot: Arc<CubeSnapshot>) {
        let inactive = 1 - self.active.load(Ordering::Acquire);
        *self.slots[inactive].lock().expect("snapshot slot lock") = snapshot;
        self.active.store(inactive, Ordering::Release);
    }

    /// Takes a handle on the most recently published snapshot. Never
    /// blocks the publisher in steady state; the critical section is
    /// one `Arc` clone.
    pub fn load(&self) -> Arc<CubeSnapshot> {
        let active = self.active.load(Ordering::Acquire);
        let snapshot = Arc::clone(&self.slots[active].lock().expect("snapshot slot lock"));
        self.reads.fetch_add(1, Ordering::Relaxed);
        snapshot
    }

    /// How many [`load`](Self::load)s this cell has served — surfaced
    /// as [`RunStats::snapshot_reads`](regcube_core::RunStats) by the
    /// server's per-tenant statistics.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_olap::{CubeSchema, CuboidSpec};
    use regcube_stream::EngineConfig;

    fn snapshot_at(closes: usize) -> Arc<CubeSnapshot> {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut engine = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![2, 2]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_ticks_per_unit(2)
        .build()
        .unwrap();
        for _ in 0..closes {
            engine.close_unit().unwrap();
        }
        Arc::new(engine.snapshot())
    }

    #[test]
    fn publish_then_load_round_trips() {
        let cell = SnapshotCell::new(snapshot_at(0));
        assert_eq!(cell.load().epoch(), 0);
        cell.publish(snapshot_at(1));
        assert_eq!(cell.load().epoch(), 1);
        cell.publish(snapshot_at(2));
        cell.publish(snapshot_at(3));
        assert_eq!(cell.load().epoch(), 3);
        assert_eq!(cell.reads(), 3);
    }

    #[test]
    fn held_handle_survives_later_publishes() {
        let cell = SnapshotCell::new(snapshot_at(0));
        let old = cell.load();
        cell.publish(snapshot_at(2));
        assert_eq!(old.epoch(), 0);
        assert_eq!(cell.load().epoch(), 2);
    }
}
