//! Model-based property test of the serving layer: arbitrary
//! interleavings of per-tenant ingest/close/flush/query commands are
//! replayed against a model (one private single-threaded engine per
//! tenant, driven identically). Pins tenant isolation — commands
//! aimed at tenant A never perturb tenant B's published snapshot —
//! and monotone snapshot epochs at every observation point.

use proptest::prelude::*;
use regcube_core::ExceptionPolicy;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_serve::{ServeConfig, Server, TenantId};
use regcube_stream::{EngineConfig, OnlineEngine, RawRecord};
use regcube_tilt::TiltSpec;

const TPU: usize = 4;
const TENANTS: usize = 2;

fn config() -> EngineConfig {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(1.0))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TPU)
}

fn ids_of(t: usize) -> TenantId {
    TenantId::from(format!("tenant-{t}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Served snapshots equal the model at every query point, tenants
    /// are isolated, and epochs are monotone.
    #[test]
    fn serving_matches_single_threaded_model(
        commands in prop::collection::vec(
            (0u8..8, 0u8..TENANTS as u8, 0u32..4, 0u32..4, -5.0..5.0f64),
            1..60,
        ),
    ) {
        let server = Server::new(
            ServeConfig::new()
                .with_queue_capacity(4096)
                .with_pump_threads(2)
                .with_cubing_threads(2),
        );
        let mut models: Vec<OnlineEngine> = Vec::new();
        for t in 0..TENANTS {
            server.create_tenant(ids_of(t), config()).unwrap();
            models.push(config().build().unwrap());
        }
        let mut last_epoch = [0u64; TENANTS];
        let mut offsets = [0usize; TENANTS];

        for (op, tenant, a, b, value) in commands {
            let t = tenant as usize;
            let id = ids_of(t);
            match op {
                // Ingest dominates the distribution (ops 0-4): a record
                // in the model's open unit, mirrored to the server.
                0..=4 => {
                    let tick = models[t].open_unit() * TPU as i64
                        + (offsets[t] % TPU) as i64;
                    offsets[t] += 1;
                    let record = RawRecord::new(vec![a, b], tick, value);
                    models[t].ingest(&record).unwrap();
                    server.ingest(&id, &record).unwrap();
                    // Isolation: an ingest to `t` must not move any
                    // other tenant's published snapshot.
                    for (other, model) in models.iter().enumerate() {
                        if other != t {
                            let served = server.snapshot(&ids_of(other)).unwrap();
                            prop_assert_eq!(
                                served.canonical_text(),
                                model.snapshot().canonical_text(),
                                "tenant {} perturbed by ingest to tenant {}", other, t
                            );
                        }
                    }
                }
                5 => {
                    models[t].close_unit().unwrap();
                    let pump = server.close_unit(&id).unwrap();
                    prop_assert!(pump.errors.is_empty(), "{:?}", pump.errors);
                }
                6 => {
                    models[t].flush().unwrap();
                    let pump = server.flush(&id).unwrap();
                    prop_assert!(pump.errors.is_empty(), "{:?}", pump.errors);
                }
                _ => {
                    // Query: full equality against the model, plus
                    // epoch monotonicity.
                    let served = server.snapshot(&id).unwrap();
                    prop_assert!(
                        served.epoch() >= last_epoch[t],
                        "epoch regressed for tenant {}: {} then {}",
                        t, last_epoch[t], served.epoch()
                    );
                    last_epoch[t] = served.epoch();
                    prop_assert_eq!(served.epoch(), models[t].units_closed());
                    prop_assert_eq!(
                        served.canonical_text(),
                        models[t].snapshot().canonical_text(),
                        "served snapshot diverged from model for tenant {}", t
                    );
                }
            }
        }
        // Endstate parity for every tenant.
        for (t, model) in models.iter_mut().enumerate() {
            let pump = server.flush(&ids_of(t)).unwrap();
            prop_assert!(pump.errors.is_empty());
            model.flush().unwrap();
            let served = server.snapshot(&ids_of(t)).unwrap();
            prop_assert_eq!(
                served.canonical_text(),
                model.snapshot().canonical_text()
            );
        }
    }
}
