//! Backpressure failure injection: a full bounded queue must be a
//! typed [`ServeError::Overloaded`] — never a silent drop — accepted
//! records must never be lost, rejections must be counted, and a
//! saturated tenant must not stall any other tenant's unit closes.

use regcube_core::ExceptionPolicy;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_serve::{ServeConfig, ServeError, Server, TenantId};
use regcube_stream::{EngineConfig, RawRecord};
use regcube_tilt::TiltSpec;

const TPU: usize = 4;

fn config() -> EngineConfig {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(10.0))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TPU)
}

fn server(queue_capacity: usize) -> Server {
    Server::new(
        ServeConfig::new()
            .with_queue_capacity(queue_capacity)
            .with_pump_threads(2)
            .with_cubing_threads(2),
    )
}

/// Total mass warehoused at the m-layer of the latest snapshot — with
/// every record carrying value 1.0, this counts accepted records.
fn warehoused_mass(server: &Server, id: &TenantId) -> f64 {
    let snap = server.snapshot(id).unwrap();
    match snap.try_cube() {
        None => 0.0,
        Some(cube) => cube.m_table().values().map(|isb| isb.sum_z()).sum(),
    }
}

#[test]
fn full_queue_rejects_typed_and_counts() {
    let server = server(8);
    let id = TenantId::from("t");
    server.create_tenant(id.clone(), config()).unwrap();

    // Exactly `capacity` records are accepted, then typed rejections.
    for i in 0..8i64 {
        let r = RawRecord::new(vec![0, 0], i % TPU as i64, 1.0);
        assert!(server.ingest(&id, &r).is_ok(), "record {i} within capacity");
    }
    for _ in 0..3 {
        let r = RawRecord::new(vec![0, 0], 0, 1.0);
        match server.ingest(&id, &r) {
            Err(ServeError::Overloaded { tenant, capacity }) => {
                assert_eq!(tenant, id);
                assert_eq!(capacity, 8);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    let stats = server.tenant_stats(&id).unwrap();
    assert_eq!(stats.overload_rejections, 3, "every rejection is counted");

    // Pumping frees the queue; ingest works again immediately.
    let pump = server.pump_tenant(&id).unwrap();
    assert!(pump.errors.is_empty());
    assert!(server
        .ingest(&id, &RawRecord::new(vec![0, 0], 1, 1.0))
        .is_ok());
}

#[test]
fn accepted_records_are_never_lost() {
    let server = server(4);
    let id = TenantId::from("t");
    server.create_tenant(id.clone(), config()).unwrap();

    // Drive several saturation cycles: each cycle accepts up to
    // capacity, collects rejections, then drains. Every accepted
    // record (value 1.0) must end up warehoused.
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut tick = 0i64;
    for _cycle in 0..5 {
        for burst in 0..7 {
            let r = RawRecord::new(vec![burst % 2, 0], tick % TPU as i64, 1.0);
            match server.ingest(&id, &r) {
                Ok(()) => accepted += 1,
                Err(ServeError::Overloaded { .. }) => rejected += 1,
                Err(e) => panic!("unexpected {e}"),
            }
            tick += 1;
        }
        let pump = server.pump_tenant(&id).unwrap();
        assert!(pump.errors.is_empty(), "{:?}", pump.errors);
    }
    server.close_unit(&id).unwrap();
    assert!(rejected > 0, "the injection must actually saturate");
    let mass = warehoused_mass(&server, &id);
    assert!(
        (mass - accepted as f64).abs() < 1e-9,
        "warehoused {mass} but accepted {accepted}: records were lost"
    );
    let stats = server.tenant_stats(&id).unwrap();
    assert_eq!(stats.overload_rejections, rejected);
}

#[test]
fn saturated_tenant_does_not_stall_others() {
    let server = server(4);
    let hog = TenantId::from("hog");
    let healthy = TenantId::from("healthy");
    server.create_tenant(hog.clone(), config()).unwrap();
    server.create_tenant(healthy.clone(), config()).unwrap();

    // Saturate the hog and leave its queue full (never pumped).
    for i in 0..4i64 {
        server
            .ingest(&hog, &RawRecord::new(vec![0, 0], i, 1.0))
            .unwrap();
    }
    assert!(matches!(
        server.ingest(&hog, &RawRecord::new(vec![0, 0], 0, 1.0)),
        Err(ServeError::Overloaded { .. })
    ));

    // The healthy tenant keeps ingesting, closing and publishing.
    for unit in 0..3i64 {
        for t in unit * TPU as i64..(unit + 1) * TPU as i64 {
            server
                .ingest(&healthy, &RawRecord::new(vec![1, 1], t, 2.0))
                .unwrap();
        }
        let pump = server.close_unit(&healthy).unwrap();
        assert!(pump.errors.is_empty());
        assert_eq!(
            server.snapshot(&healthy).unwrap().epoch(),
            (unit + 1) as u64,
            "healthy tenant's publishes must proceed while the hog is saturated"
        );
    }
    // The hog's queue is intact: draining it loses nothing.
    server.close_unit(&hog).unwrap();
    assert!((warehoused_mass(&server, &hog) - 4.0).abs() < 1e-9);
}

#[test]
fn bad_records_are_contained_per_tenant() {
    let server = server(64);
    let id = TenantId::from("t");
    server.create_tenant(id.clone(), config()).unwrap();

    // A malformed record (id out of the schema's range) plus good ones.
    server
        .ingest(&id, &RawRecord::new(vec![0, 0], 0, 1.0))
        .unwrap();
    server
        .ingest(&id, &RawRecord::new(vec![99, 0], 1, 1.0))
        .unwrap();
    server
        .ingest(&id, &RawRecord::new(vec![1, 1], 2, 1.0))
        .unwrap();
    let pump = server.close_unit(&id).unwrap();
    assert_eq!(pump.errors.len(), 1, "bad record surfaces exactly once");
    assert!(matches!(pump.errors[0], ServeError::Stream(_)));
    // The good records around it were ingested.
    assert!((warehoused_mass(&server, &id) - 2.0).abs() < 1e-9);
}

#[test]
fn admission_control_caps_tenants() {
    let server = Server::new(ServeConfig::new().with_max_tenants(2));
    server.create_tenant("a", config()).unwrap();
    server.create_tenant("b", config()).unwrap();
    match server.create_tenant("c", config()) {
        Err(ServeError::AdmissionDenied { max_tenants }) => assert_eq!(max_tenants, 2),
        other => panic!("expected AdmissionDenied, got {other:?}"),
    }
    match server.create_tenant("a", config()) {
        Err(ServeError::DuplicateTenant { tenant }) => assert_eq!(tenant.as_str(), "a"),
        other => panic!("expected DuplicateTenant, got {other:?}"),
    }
    // Dropping frees a slot.
    server.drop_tenant(&TenantId::from("a")).unwrap();
    server.create_tenant("c", config()).unwrap();
    assert_eq!(server.tenant_count(), 2);
}
