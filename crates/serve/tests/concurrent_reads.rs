//! The concurrency stress harness: N reader threads hammer a tenant's
//! published snapshots while a writer ingests and closes units through
//! the server. Every snapshot any reader observes must be
//! **bit-identical** to the single-threaded engine's state at the same
//! unit boundary (no torn reads), and every reader's observed epochs
//! must be monotone — under shards {1, 2, 3, 7} and on both the row
//! and arena backends.

use regcube_core::{Backend, ExceptionPolicy};
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_serve::{ServeConfig, Server, TenantId};
use regcube_stream::{EngineConfig, RawRecord};
use regcube_tilt::TiltSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const TPU: usize = 4;
const UNITS: i64 = 8;
const READERS: usize = 4;

fn config(shards: usize, backend: Backend) -> EngineConfig {
    let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![1, 1]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(0.8))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TPU)
    .with_shards(shards)
    .with_backend(backend)
}

/// The deterministic stream: drifting cells plus one steep cell, the
/// same for the reference run and the served run.
fn unit_records(unit: i64) -> Vec<RawRecord> {
    let mut records = Vec::new();
    for t in unit * TPU as i64..(unit + 1) * TPU as i64 {
        for a in 0..3u32 {
            for b in 0..3u32 {
                let v = if a == 2 && b == 1 {
                    4.0 * (t % TPU as i64) as f64 + unit as f64
                } else {
                    1.0 + 0.3 * f64::from(a) + 0.1 * (t % TPU as i64) as f64 * f64::from(b)
                };
                records.push(RawRecord::new(vec![a, b], t, v));
            }
        }
    }
    records
}

/// The single-threaded ground truth: canonical text at every epoch.
fn reference_texts(shards: usize, backend: Backend) -> HashMap<u64, String> {
    let mut engine = config(shards, backend).build().unwrap();
    let mut texts = HashMap::new();
    texts.insert(0, engine.snapshot().canonical_text());
    for unit in 0..UNITS {
        for record in unit_records(unit) {
            engine.ingest(&record).unwrap();
        }
        engine.close_unit().unwrap();
        let snap = engine.snapshot();
        texts.insert(snap.epoch(), snap.canonical_text());
    }
    texts
}

/// Runs the stress: one writer thread drives the server, `READERS`
/// threads loop on lock-free snapshot loads, and afterwards every
/// observation is checked against the single-threaded reference.
fn stress(shards: usize, backend: Backend) {
    let reference = reference_texts(shards, backend);

    let server = Arc::new(Server::new(
        ServeConfig::new()
            .with_queue_capacity(4096)
            .with_pump_threads(2),
    ));
    let id = TenantId::from("stress");
    server
        .create_tenant(id.clone(), config(shards, backend))
        .unwrap();
    let reader = server.reader(&id).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..READERS)
        .map(|_| {
            let reader = reader.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut observed: Vec<(u64, String)> = Vec::new();
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch regressed: {} then {}",
                        last_epoch,
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    observed.push((snap.epoch(), snap.canonical_text()));
                    thread::yield_now();
                }
                observed
            })
        })
        .collect();

    // The writer: live ingest through the server while readers hammer.
    for unit in 0..UNITS {
        for record in unit_records(unit) {
            server.ingest(&id, &record).unwrap();
        }
        let pump = server.close_unit(&id).unwrap();
        assert!(pump.errors.is_empty(), "{:?}", pump.errors);
        thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);

    let mut total = 0usize;
    for handle in handles {
        for (epoch, text) in handle.join().unwrap() {
            let expected = reference
                .get(&epoch)
                .unwrap_or_else(|| panic!("observed unknown epoch {epoch}"));
            assert_eq!(
                expected, &text,
                "torn read: epoch {epoch} differs from single-threaded reference \
                 (shards={shards}, backend={backend:?})"
            );
            total += 1;
        }
    }
    assert!(total > 0, "readers observed nothing");
    // The served endstate itself matches the reference's final epoch.
    let final_snap = server.snapshot(&id).unwrap();
    assert_eq!(final_snap.epoch(), UNITS as u64);
    assert_eq!(&final_snap.canonical_text(), &reference[&(UNITS as u64)]);
}

#[test]
fn concurrent_reads_are_bit_identical_row_backend() {
    for shards in [1, 2, 3, 7] {
        stress(shards, Backend::Row);
    }
}

#[test]
fn concurrent_reads_are_bit_identical_arena_backend() {
    for shards in [1, 2, 3, 7] {
        stress(shards, Backend::Arena);
    }
}
