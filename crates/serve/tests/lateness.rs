//! The serving layer's lateness path: shuffled, straggling,
//! multi-source records pushed through a watermark-reordering tenant
//! must publish snapshots **bit-identical** to a sorted single-engine
//! replay, and a tenant checkpointed mid-stream must restore into a
//! new server and finish identically.

use proptest::prelude::*;
use regcube_core::ExceptionPolicy;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_serve::{ServeConfig, Server, TenantId};
use regcube_stream::{EngineConfig, RawRecord, WatermarkPolicy};
use regcube_tilt::TiltSpec;

const TPU: usize = 4;

/// A reorder-enabled analysis with per-source watermarks.
fn config() -> EngineConfig {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(1.0))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TPU)
    .with_reordering(16, 2)
    .with_watermark_policy(WatermarkPolicy::PerSource { idle_units: 4 })
}

fn server() -> Server {
    Server::new(
        ServeConfig::new()
            .with_queue_capacity(4096)
            .with_pump_threads(2)
            .with_cubing_threads(2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stragglers within the allowed lateness, arriving shuffled and
    /// tagged with rotating source ids, leave the served tenant's
    /// final snapshot byte-identical to a sorted replay through a
    /// private engine — the whole queue/pump/publish machinery adds
    /// nothing and loses nothing.
    #[test]
    fn shuffled_stragglers_serve_bit_identical_to_sorted_replay(
        raw in prop::collection::vec(
            (prop::collection::vec(0u32..4, 2), 0i64..28, -10.0..10.0f64),
            4..120,
        ),
        jitters in prop::collection::vec(0i64..(2 * TPU as i64), 120),
    ) {
        // Canonical sorted stream; sources derived from the cell so the
        // per-source watermark map stays busy.
        let mut sorted: Vec<RawRecord> = raw
            .iter()
            .map(|(ids, tick, value)| {
                let source = ids.iter().sum::<u32>() % 3;
                RawRecord::new(ids.clone(), *tick, *value).with_source(source)
            })
            .collect();
        sorted.sort_by(|a, b| {
            (a.tick, &a.ids, a.value.to_bits()).cmp(&(b.tick, &b.ids, b.value.to_bits()))
        });
        // The shuffled arrival order: stable-sort by jittered tick so
        // displacement stays within the allowed lateness.
        let mut shuffled: Vec<(i64, RawRecord)> = sorted
            .iter()
            .zip(&jitters)
            .map(|(r, j)| (r.tick + j, r.clone()))
            .collect();
        shuffled.sort_by_key(|(k, _)| *k);

        // Reference: sorted replay through a private engine.
        let mut model = config().build().unwrap();
        for r in &sorted {
            model.ingest(r).unwrap();
            model.drain_ready().unwrap();
        }
        model.flush().unwrap();

        // Served: shuffled arrival through the full queue/pump path,
        // pumping at arbitrary points (every 7th record).
        let server = server();
        let id = TenantId::from("straggler-tenant");
        server.create_tenant(id.clone(), config()).unwrap();
        for (i, (_, r)) in shuffled.iter().enumerate() {
            server.ingest(&id, r).unwrap();
            if i % 7 == 0 {
                let pump = server.pump_tenant(&id).unwrap();
                prop_assert!(pump.errors.is_empty(), "{:?}", pump.errors);
            }
        }
        let fin = server.flush(&id).unwrap();
        prop_assert!(fin.errors.is_empty(), "{:?}", fin.errors);

        let served = server.snapshot(&id).unwrap();
        prop_assert_eq!(
            served.canonical_text(),
            model.snapshot().canonical_text()
        );
        // The dashboard surfaces the lateness counters from the same
        // snapshot.
        let summary = server.summary(&id).unwrap();
        prop_assert_eq!(summary.late_dropped, model.stats().late_dropped);
        prop_assert_eq!(
            summary.late_amendments,
            model.stats().late_amendments
        );
    }
}

/// A served tenant checkpointed mid-stream restores into a *different*
/// server and finishes bit-identical to the uninterrupted tenant —
/// queue, pump and snapshot cell all rebuilt around the recovered
/// engine.
#[test]
fn tenant_checkpoint_restores_into_a_new_server() {
    let records: Vec<RawRecord> = (0..48i64)
        .map(|i| {
            let ids = vec![(i % 4) as u32, ((i / 2) % 4) as u32];
            let jitter = [0, 3, 1, 5][(i % 4) as usize];
            RawRecord::new(ids, (i - jitter).max(0), (i % 7) as f64 - 3.0)
                .with_source((i % 3) as u32)
        })
        .collect();
    let (first, second) = records.split_at(24);

    // Uninterrupted reference tenant.
    let ref_server = server();
    let rid = TenantId::from("reference");
    ref_server.create_tenant(rid.clone(), config()).unwrap();
    for r in &records {
        ref_server.ingest(&rid, r).unwrap();
    }
    let pump = ref_server.flush(&rid).unwrap();
    assert!(pump.errors.is_empty(), "{:?}", pump.errors);

    // Victim: first half, pump (so queued records are in the engine),
    // checkpoint.
    let dir = std::env::temp_dir().join(format!("regcube-serve-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tenant.rgck");
    {
        let victim_server = server();
        let vid = TenantId::from("victim");
        victim_server.create_tenant(vid.clone(), config()).unwrap();
        for r in first {
            victim_server.ingest(&vid, r).unwrap();
        }
        let pump = victim_server.pump_tenant(&vid).unwrap();
        assert!(pump.errors.is_empty(), "{:?}", pump.errors);
        victim_server.checkpoint_tenant(&vid, &path).unwrap();
        // The server (and the tenant's engine) now goes away entirely.
    }

    // Revival in a fresh server; same id namespace is fine.
    let revived_server = server();
    let vid = TenantId::from("victim");
    revived_server
        .restore_tenant(vid.clone(), config(), &path)
        .unwrap();
    // The restored state is published before any new record arrives.
    assert!(revived_server.snapshot(&vid).unwrap().epoch() > 0);
    for r in second {
        revived_server.ingest(&vid, r).unwrap();
    }
    let pump = revived_server.flush(&vid).unwrap();
    assert!(pump.errors.is_empty(), "{:?}", pump.errors);

    assert_eq!(
        ref_server.snapshot(&rid).unwrap().canonical_text(),
        revived_server.snapshot(&vid).unwrap().canonical_text()
    );
    let (a, b) = (
        ref_server.tenant_stats(&rid).unwrap(),
        revived_server.tenant_stats(&vid).unwrap(),
    );
    assert_eq!(a.late_dropped, b.late_dropped);
    assert_eq!(a.late_amendments, b.late_amendments);

    // A second restore under the same id collides, typed.
    assert!(revived_server
        .restore_tenant(vid.clone(), config(), &path)
        .is_err());
    // A corrupt file admits nothing.
    let garbage = dir.join("garbage.rgck");
    std::fs::write(&garbage, b"not a checkpoint").unwrap();
    let cid = TenantId::from("casualty");
    assert!(revived_server
        .restore_tenant(cid.clone(), config(), &garbage)
        .is_err());
    assert!(revived_server.snapshot(&cid).is_err(), "no tenant admitted");

    std::fs::remove_dir_all(&dir).ok();
}
