//! Micro-benchmarks of the hot primitives: OLS fitting, the two
//! aggregation theorems, H-tree construction and tilt-frame maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use regcube_olap::htree::{AttrSpec, HTree};
use regcube_regress::{aggregate, Isb, LinearFit, TimeSeries};
use regcube_tilt::{TiltFrame, TiltSpec};
use std::hint::black_box;

fn series(n: usize) -> TimeSeries {
    TimeSeries::from_fn(0, n as i64 - 1, |t| {
        1.0 + 0.01 * t as f64 + ((t * 37) % 11) as f64 * 0.05
    })
    .unwrap()
}

fn bench_ols_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("ols_fit");
    for n in [20usize, 100, 1000] {
        let z = series(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &z, |b, z| {
            b.iter(|| black_box(LinearFit::fit(z)));
        });
    }
    g.finish();
}

fn bench_merge_standard(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm32_merge_standard");
    for k in [2usize, 16, 64] {
        let isbs: Vec<Isb> = (0..k)
            .map(|i| Isb::new(0, 19, i as f64, 0.1 * i as f64).unwrap())
            .collect();
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &isbs, |b, isbs| {
            b.iter(|| black_box(aggregate::merge_standard(isbs).unwrap()));
        });
    }
    g.finish();
}

fn bench_merge_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("thm33_merge_time");
    for k in [2usize, 8, 32] {
        let seg = 10i64;
        let isbs: Vec<Isb> = (0..k as i64)
            .map(|i| Isb::new(i * seg, (i + 1) * seg - 1, 1.0, 0.01 * i as f64).unwrap())
            .collect();
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &isbs, |b, isbs| {
            b.iter(|| black_box(aggregate::merge_time(isbs).unwrap()));
        });
        // The paper's verbatim formula, for comparison.
        g.bench_with_input(
            BenchmarkId::new("theorem33_verbatim", k),
            &isbs,
            |b, isbs| {
                b.iter(|| black_box(aggregate::merge_time_theorem33(isbs).unwrap()));
            },
        );
    }
    g.finish();
}

fn bench_htree_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("htree_insert");
    g.sample_size(20);
    for n in [1_000usize, 10_000] {
        // 6-attribute paths (3 dims x 2 levels) over a fanout-10 space.
        let order: Vec<AttrSpec> = (0..3)
            .flat_map(|d| [AttrSpec { dim: d, level: 1 }, AttrSpec { dim: d, level: 2 }])
            .collect();
        let paths: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let x = (i * 2654435761) % 1000;
                vec![
                    (x / 100) as u32,
                    (x % 100) as u32,
                    ((x * 7) % 10) as u32,
                    ((x * 7) % 100) as u32,
                    ((x * 13) % 10) as u32,
                    ((x * 13) % 100) as u32,
                ]
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &paths, |b, paths| {
            b.iter(|| {
                let mut tree: HTree<u64> = HTree::new(order.clone()).unwrap();
                for p in paths {
                    let leaf = tree.insert_path(p).unwrap();
                    *tree.payload_mut(leaf) = Some(1);
                }
                black_box(tree.num_nodes())
            });
        });
    }
    g.finish();
}

fn bench_tilt_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("tilt_frame");
    g.sample_size(20);
    // A week of quarters through the paper's Figure 4 frame.
    let quarters = 7 * 24 * 4;
    g.throughput(Throughput::Elements(quarters as u64));
    g.bench_function("push_week_of_quarters", |b| {
        b.iter(|| {
            let mut frame: TiltFrame<Isb> = TiltFrame::new(TiltSpec::paper_figure4());
            for u in 0..quarters {
                let start = u as i64 * 15;
                let isb = Isb::new(start, start + 14, 1.0, 0.001).unwrap();
                frame.push(isb).unwrap();
            }
            black_box(frame.retained_slots())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ols_fit,
    bench_merge_standard,
    bench_merge_time,
    bench_htree_build,
    bench_tilt_push
);
criterion_main!(benches);
