//! Criterion versions of the figure experiments at reduced scale — one
//! benchmark per (figure, algorithm, sweep point) so `cargo bench`
//! tracks regressions on the exact code paths the paper's evaluation
//! exercises. The full-scale single-shot numbers come from the `figures`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regcube_bench::experiments::{threshold_for_rate, Workload};
use regcube_core::{mo_cubing, popular_path, ExceptionPolicy};
use regcube_datagen::{Dataset, DatasetSpec};
use std::hint::black_box;

fn workload(spec: DatasetSpec) -> Workload {
    Workload::from_dataset(&Dataset::generate(spec).unwrap())
}

/// Figure 8 at D3L3C4T2K: both algorithms at a low and a high exception
/// rate.
fn bench_fig8(c: &mut Criterion) {
    let w = workload(DatasetSpec::new(3, 3, 4, 2_000).unwrap());
    let mut g = c.benchmark_group("fig8_time_vs_exception");
    g.sample_size(10);
    for rate in [1.0f64, 100.0] {
        let policy = ExceptionPolicy::slope_threshold(threshold_for_rate(&w, rate));
        g.bench_with_input(BenchmarkId::new("mo_cubing", rate), &policy, |b, p| {
            b.iter(|| black_box(mo_cubing::compute(&w.schema, &w.layers, p, &w.tuples).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("popular_path", rate), &policy, |b, p| {
            b.iter(|| {
                black_box(popular_path::compute(&w.schema, &w.layers, p, None, &w.tuples).unwrap())
            });
        });
    }
    g.finish();
}

/// Figure 9 at D3L3C4, sizes 1K and 4K, 1% exceptions.
fn bench_fig9(c: &mut Criterion) {
    let full = Dataset::generate(DatasetSpec::new(3, 3, 4, 4_000).unwrap()).unwrap();
    let mut g = c.benchmark_group("fig9_time_vs_size");
    g.sample_size(10);
    for size in [1_000usize, 4_000] {
        let w = Workload::from_dataset(&full.subset(size));
        let policy = ExceptionPolicy::slope_threshold(threshold_for_rate(&w, 1.0));
        g.bench_with_input(BenchmarkId::new("mo_cubing", size), &w, |b, w| {
            b.iter(|| {
                black_box(mo_cubing::compute(&w.schema, &w.layers, &policy, &w.tuples).unwrap())
            });
        });
        g.bench_with_input(BenchmarkId::new("popular_path", size), &w, |b, w| {
            b.iter(|| {
                black_box(
                    popular_path::compute(&w.schema, &w.layers, &policy, None, &w.tuples).unwrap(),
                )
            });
        });
    }
    g.finish();
}

/// Figure 10 at D2C4T1K, levels 3 and 5, 1% exceptions.
fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_time_vs_levels");
    g.sample_size(10);
    for levels in [3u8, 5] {
        let w = workload(DatasetSpec::new(2, levels, 4, 1_000).unwrap());
        let policy = ExceptionPolicy::slope_threshold(threshold_for_rate(&w, 1.0));
        g.bench_with_input(BenchmarkId::new("mo_cubing", levels), &w, |b, w| {
            b.iter(|| {
                black_box(mo_cubing::compute(&w.schema, &w.layers, &policy, &w.tuples).unwrap())
            });
        });
        g.bench_with_input(BenchmarkId::new("popular_path", levels), &w, |b, w| {
            b.iter(|| {
                black_box(
                    popular_path::compute(&w.schema, &w.layers, &policy, None, &w.tuples).unwrap(),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8, bench_fig9, bench_fig10);
criterion_main!(benches);
