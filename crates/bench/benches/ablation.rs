//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. H-tree attribute ordering: ascending cardinality (the paper's
//!    choice) vs descending — sharing near the root vs near the leaves.
//! 2. Aggregating a cuboid from its closest computed descendant (what
//!    m/o-cubing does) vs always from the m-layer.
//! 3. ISB warehousing vs raw series: aggregate with Theorem 3.2 on the
//!    4-number measures vs summing full series and refitting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use regcube_bench::experiments::Workload;
use regcube_core::table::{aggregate_from, CuboidTable};
use regcube_datagen::{Dataset, DatasetSpec};
use regcube_olap::htree::{attrs_by_cardinality, expand_tuple, AttrSpec, HTree};
use regcube_olap::{CuboidSpec, Lattice};
use regcube_regress::{aggregate, Isb, TimeSeries};
use std::hint::black_box;

fn workload() -> Workload {
    Workload::from_dataset(&Dataset::generate(DatasetSpec::new(3, 3, 4, 3_000).unwrap()).unwrap())
}

/// Ablation 1: H-tree attribute order.
fn bench_htree_order(c: &mut Criterion) {
    let w = workload();
    let lattice = w.layers.lattice();
    let asc = attrs_by_cardinality(&w.schema, lattice);
    let desc: Vec<AttrSpec> = asc.iter().rev().copied().collect();
    let mut g = c.benchmark_group("ablation_htree_order");
    g.sample_size(10);
    for (name, order) in [("cardinality_asc", &asc), ("cardinality_desc", &desc)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), order, |b, order| {
            b.iter(|| {
                let mut tree: HTree<Isb> = HTree::new(order.clone()).unwrap();
                for t in &w.tuples {
                    let values = expand_tuple(&w.schema, w.layers.m_layer(), t.ids(), tree.order());
                    let leaf = tree.insert_path(&values).unwrap();
                    *tree.payload_mut(leaf) = Some(*t.isb());
                }
                black_box(tree.num_nodes())
            });
        });
    }
    g.finish();
    // Report the structural difference once (node counts drive memory).
    let count_nodes = |order: &Vec<AttrSpec>| {
        let mut tree: HTree<Isb> = HTree::new(order.clone()).unwrap();
        for t in &w.tuples {
            let values = expand_tuple(&w.schema, w.layers.m_layer(), t.ids(), tree.order());
            tree.insert_path(&values).unwrap();
        }
        tree.num_nodes()
    };
    eprintln!(
        "[ablation] H-tree nodes: cardinality-asc {} vs desc {}",
        count_nodes(&asc),
        count_nodes(&desc)
    );
}

/// Ablation 2: aggregate from the closest descendant vs from the m-layer.
fn bench_aggregation_source(c: &mut Criterion) {
    let w = workload();
    let lattice: &Lattice = w.layers.lattice();
    // Build the m-layer table and an intermediate one-step-finer table.
    let m_table: CuboidTable = w
        .tuples
        .iter()
        .map(|t| (regcube_olap::cell::CellKey::new(t.ids().to_vec()), *t.isb()))
        .collect();
    let target = CuboidSpec::new(vec![1, 1, 1]);
    let mid = CuboidSpec::new(vec![1, 2, 2]); // closest computed descendant
    let (mid_table, _) =
        aggregate_from(&w.schema, lattice.m_layer(), &m_table, &mid, None).unwrap();

    let mut g = c.benchmark_group("ablation_aggregation_source");
    g.sample_size(20);
    g.bench_function("from_m_layer", |b| {
        b.iter(|| {
            black_box(
                aggregate_from(&w.schema, lattice.m_layer(), &m_table, &target, None).unwrap(),
            )
        });
    });
    g.bench_function("from_closest_descendant", |b| {
        b.iter(|| black_box(aggregate_from(&w.schema, &mid, &mid_table, &target, None).unwrap()));
    });
    g.finish();
}

/// Ablation 3: the paper's core compression claim — aggregating ISBs vs
/// keeping and summing raw series.
fn bench_isb_vs_raw(c: &mut Criterion) {
    let k = 256usize;
    let len = 96i64; // one day of quarters
    let series: Vec<TimeSeries> = (0..k)
        .map(|i| {
            TimeSeries::from_fn(0, len - 1, |t| {
                1.0 + (i as f64) * 0.01 + 0.002 * (t as f64) * (i % 7) as f64
            })
            .unwrap()
        })
        .collect();
    let isbs: Vec<Isb> = series.iter().map(|z| Isb::fit(z).unwrap()).collect();

    let mut g = c.benchmark_group("ablation_isb_vs_raw");
    g.bench_function("thm32_on_isbs", |b| {
        b.iter(|| black_box(aggregate::merge_standard(&isbs).unwrap()));
    });
    g.bench_function("sum_raw_series_then_fit", |b| {
        b.iter(|| {
            let sum = TimeSeries::sum_many(&series).unwrap();
            black_box(Isb::fit(&sum).unwrap())
        });
    });
    g.finish();
    eprintln!(
        "[ablation] bytes per cell: ISB = {} vs raw series({len} ticks) = {}",
        std::mem::size_of::<Isb>(),
        std::mem::size_of::<TimeSeries>() + len as usize * std::mem::size_of::<f64>(),
    );
}

criterion_group!(
    benches,
    bench_htree_order,
    bench_aggregation_source,
    bench_isb_vs_raw
);
criterion_main!(benches);
