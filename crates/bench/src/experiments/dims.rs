//! **Figure 10's discussion, extended**: "It is expected this exponential
//! growth will be even more serious if the number of dimension (D)
//! grows." The paper states but does not plot this; we sweep D at fixed
//! L/C/T to verify the `L^D` lattice blow-up experimentally.

use super::{run_mo, run_pp, threshold_for_rate, Workload};
use crate::report::{fmt_mb, fmt_secs, Table};
use regcube_core::ExceptionPolicy;
use regcube_datagen::{Dataset, DatasetSpec};
use std::time::Duration;

/// The dimension axis.
pub const DIMS: [usize; 4] = [1, 2, 3, 4];

/// One measured sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Number of standard dimensions.
    pub dims: usize,
    /// Cuboids in the lattice (`L^D`).
    pub cuboids: u64,
    /// m/o-cubing runtime (seconds).
    pub mo_secs: f64,
    /// popular-path runtime (seconds).
    pub pp_secs: f64,
    /// m/o-cubing allocator peak (bytes).
    pub mo_peak: usize,
    /// popular-path allocator peak (bytes).
    pub pp_peak: usize,
}

/// Runs the sweep at L3, 1% exceptions.
pub fn run(quick: bool) -> Vec<Point> {
    let (fanout, tuples) = if quick {
        (3u32, 1_000usize)
    } else {
        (6, 10_000)
    };
    DIMS.iter()
        .map(|&dims| {
            let spec = DatasetSpec::new(dims, 3, fanout, tuples).unwrap();
            let dataset = Dataset::generate(spec).expect("valid spec");
            let workload = Workload::from_dataset(&dataset);
            let threshold = threshold_for_rate(&workload, 1.0);
            let policy = ExceptionPolicy::slope_threshold(threshold);
            let mo = run_mo(&workload, &policy);
            let pp = run_pp(&workload, &policy);
            Point {
                dims,
                cuboids: spec.lattice_cuboids(),
                mo_secs: mo.seconds,
                pp_secs: pp.seconds,
                mo_peak: mo.alloc_peak,
                pp_peak: pp.alloc_peak,
            }
        })
        .collect()
}

/// Prints the sweep and returns its table (for JSON export).
pub fn print(points: &[Point], structure: &str) -> Vec<Table> {
    let mut t = Table::new(
        format!("Dimensions sweep: time & memory vs D ({structure}, L3, 1% exceptions)"),
        &[
            "D",
            "cuboids",
            "m/o-cubing (s)",
            "popular-path (s)",
            "m/o (MB)",
            "pp (MB)",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.dims.to_string(),
            p.cuboids.to_string(),
            fmt_secs(Duration::from_secs_f64(p.mo_secs)),
            fmt_secs(Duration::from_secs_f64(p.pp_secs)),
            fmt_mb(p.mo_peak),
            fmt_mb(p.pp_peak),
        ]);
    }
    t.print();
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_grows_exponentially_in_dims() {
        let pts = run(true);
        assert_eq!(pts.len(), DIMS.len());
        // L^D with L=3: 3, 9, 27, 81.
        let cuboids: Vec<u64> = pts.iter().map(|p| p.cuboids).collect();
        assert_eq!(cuboids, vec![3, 9, 27, 81]);
        // Strictly growing cost with D (compare endpoints, dodging noise).
        assert!(pts.last().unwrap().mo_secs >= pts.first().unwrap().mo_secs);
    }
}
