//! **Arena**: allocator churn of the stream cube's window rollover —
//! fresh row tables every unit vs epoch-reclaimed arena tables.
//!
//! The row backend pays the global allocator `O(cells)` times per unit
//! window: every cell key is boxed when its table is built and freed
//! when the window rolls over. `regcube_core::arena` replaces both ends
//! with arena arithmetic (hash-consed `KeyId` handles in pooled chunks,
//! O(1) epoch resets), so the steady state performs (almost) no
//! allocator calls at all. This experiment measures that claim three
//! ways:
//!
//! * **backend shootout** ([`run`]): the same multi-unit replay through
//!   the row, arena and sharded-arena engines, with the new alloc-churn
//!   columns (allocator calls per unit, arena-layer allocations, keys
//!   interned, epochs reclaimed, retained bytes);
//! * **tier roll-up phases** ([`run_rollup_phases`]): the roll-up
//!   primitive in isolation — identical fold work into fresh row tables
//!   vs epoch-reset arena tables — the pair `arena_baseline` gates on
//!   (≥10x fewer allocator calls per unit);
//! * **rollover probe** ([`run_rollover_probe`]): reclamation latency
//!   and dealloc counts at three table sizes — the arena's epoch reset
//!   must stay flat (O(1)) and allocator-free while the row table's
//!   drop frees every boxed key (O(N)).

use crate::memtrack::{self, AllocCalls};
use crate::report::{fmt_count, fmt_mb, fmt_secs, Table};
use regcube_core::arena::{ArenaCubingEngine, ArenaTable, ChunkPool, SharedChunkPool};
use regcube_core::engine::CubingEngine;
use regcube_core::shard::ShardedEngine;
use regcube_core::table::{aggregate_into, CuboidTable, TableStorage};
use regcube_core::{CriticalLayers, ExceptionPolicy, MTuple, MoCubingEngine};
use regcube_datagen::{Dataset, DatasetSpec};
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured engine configuration of the multi-unit replay.
#[derive(Debug, Clone)]
pub struct Point {
    /// Configuration label.
    pub config: String,
    /// Units replayed.
    pub units: usize,
    /// Source rows folded across the whole replay.
    pub rows: u64,
    /// Throughput in folded source rows per second.
    pub rows_per_sec: f64,
    /// Total replay wall-clock.
    pub total: Duration,
    /// True allocator peak during the replay (peak-RSS proxy).
    pub alloc_peak: usize,
    /// Global-allocator call deltas across the replay (alloc + realloc
    /// + dealloc) — the churn column.
    pub calls: AllocCalls,
    /// Allocator round trips per unit window.
    pub calls_per_unit: f64,
    /// Fresh keys interned by the arena layer (0 for the row backend).
    pub keys_interned: u64,
    /// Epochs reclaimed in O(1) by the arena layer.
    pub epochs_reclaimed: u64,
    /// Heap allocations the arena layer itself performed.
    pub arena_alloc_calls: u64,
    /// Bytes the arena working set retains across windows (last unit).
    pub arena_bytes_retained: usize,
    /// Exception cells retained after the last unit (equality check).
    pub exception_cells: u64,
}

/// Replays `batches` (one per unit window) through `engine` under the
/// allocator meter, accumulating the per-unit arena counters.
fn measure(config: &str, batches: &[Vec<MTuple>], mut engine: Box<dyn CubingEngine>) -> Point {
    let started = Instant::now();
    let ((rows, keys, epochs, arena_allocs), alloc_peak, calls) =
        memtrack::measure_peak_and_calls(|| {
            let (mut rows, mut keys, mut epochs, mut arena_allocs) = (0u64, 0u64, 0u64, 0u64);
            for batch in batches {
                engine.ingest_unit(batch).expect("valid replay batch");
                let s = engine.stats();
                rows += s.rows_folded;
                keys += s.keys_interned;
                epochs += s.epochs_reclaimed;
                arena_allocs += s.arena_alloc_calls;
            }
            (rows, keys, epochs, arena_allocs)
        });
    let total = started.elapsed();
    Point {
        config: config.to_string(),
        units: batches.len(),
        rows,
        rows_per_sec: rows as f64 / total.as_secs_f64().max(1e-9),
        total,
        alloc_peak,
        calls,
        calls_per_unit: calls.total() as f64 / batches.len().max(1) as f64,
        keys_interned: keys,
        epochs_reclaimed: epochs,
        arena_alloc_calls: arena_allocs,
        arena_bytes_retained: engine.stats().arena_bytes_retained,
        exception_cells: engine.result().total_exception_cells(),
    }
}

/// The replay workload: schema, layers, policy and one batch of tuples
/// per unit window — every batch opens a unit, so each one exercises the
/// full rollover the backends differ on.
fn workload(
    quick: bool,
) -> (
    CubeSchema,
    CriticalLayers,
    ExceptionPolicy,
    Vec<Vec<MTuple>>,
) {
    let (tuples_n, units, fanout) = if quick { (2_000, 4, 4) } else { (50_000, 6, 8) };
    let ticks = 16usize;
    let spec = DatasetSpec::new(3, 3, fanout, tuples_n)
        .unwrap()
        .with_series_len(ticks * units);
    let dataset = Dataset::generate(spec).expect("valid spec");
    let schema = dataset.schema.clone();
    let layers = CriticalLayers::new(&schema, dataset.o_layer.clone(), dataset.m_layer.clone())
        .expect("valid layers");
    let policy = ExceptionPolicy::slope_threshold(0.5);
    let unit_batches: Vec<Vec<MTuple>> = (0..units)
        .map(|u| {
            let start = (u * ticks) as i64;
            let end = start + ticks as i64 - 1;
            dataset
                .tuples
                .iter()
                .map(|t| {
                    let isb = Isb::new(start, end, t.isb.base(), t.isb.slope()).expect("window");
                    MTuple::new(t.ids.clone(), isb)
                })
                .collect()
        })
        .collect();
    (schema, layers, policy, unit_batches)
}

/// Runs the backend shootout and returns one point per configuration.
pub fn run(quick: bool) -> Vec<Point> {
    let (schema, layers, policy, unit_batches) = workload(quick);
    vec![
        measure(
            "multi-unit replay, row backend",
            &unit_batches,
            Box::new(
                MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone())
                    .expect("valid engine"),
            ),
        ),
        measure(
            "multi-unit replay, arena backend",
            &unit_batches,
            Box::new(
                ArenaCubingEngine::new(schema.clone(), layers.clone(), policy.clone())
                    .expect("valid engine"),
            ),
        ),
        measure(
            "arena, 2 shards",
            &unit_batches,
            Box::new(ShardedEngine::arena(schema, layers, policy, 2).expect("valid engine")),
        ),
    ]
}

/// The full-engine ingest pair `arena_baseline` gates on: the same
/// replay through the row and the arena backends, both measured in this
/// process so their rows/sec ratio normalizes machine speed out.
pub fn run_ingest_phases(quick: bool) -> (Point, Point) {
    let (schema, layers, policy, unit_batches) = workload(quick);
    let row = measure(
        "multi-unit replay, row backend",
        &unit_batches,
        Box::new(
            MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone())
                .expect("valid engine"),
        ),
    );
    let arena = measure(
        "multi-unit replay, arena backend",
        &unit_batches,
        Box::new(ArenaCubingEngine::new(schema, layers, policy).expect("valid engine")),
    );
    (row, arena)
}

// ---------------------------------------------------------------------------
// Tier roll-up phases
// ---------------------------------------------------------------------------

/// One measured roll-up phase (row or arena storage, identical fold
/// work).
#[derive(Debug, Clone)]
pub struct RollupPhase {
    /// Phase label.
    pub config: String,
    /// Unit windows rolled up inside the measurement.
    pub units: usize,
    /// Cells produced across the replay (deterministic cross-check).
    pub cells: u64,
    /// Source rows folded across the replay (deterministic cross-check).
    pub rows_folded: u64,
    /// Total wall-clock of the measured units.
    pub total: Duration,
    /// Folded source rows per second.
    pub rows_per_sec: f64,
    /// Global-allocator call deltas across the measured units.
    pub calls: AllocCalls,
    /// Allocator round trips per unit window — the gated figure.
    pub calls_per_unit: f64,
}

/// The roll-up workload: one fixed batch of m-layer tuples plus the
/// lattice to aggregate it through, every unit.
fn rollup_workload(quick: bool) -> (CubeSchema, CriticalLayers, Vec<MTuple>) {
    let (tuples_n, fanout) = if quick { (2_000, 4) } else { (20_000, 8) };
    let spec = DatasetSpec::new(3, 3, fanout, tuples_n).unwrap();
    let dataset = Dataset::generate(spec).expect("valid spec");
    let schema = dataset.schema.clone();
    let layers = CriticalLayers::new(&schema, dataset.o_layer.clone(), dataset.m_layer.clone())
        .expect("valid layers");
    let tuples = dataset
        .tuples
        .iter()
        .map(|t| MTuple::new(t.ids.clone(), t.isb))
        .collect();
    (schema, layers, tuples)
}

/// One unit of the row phase: fold the batch into a fresh m-table, then
/// aggregate every other cuboid of the lattice from it into fresh row
/// tables — all of which drop at unit end, one free per boxed key.
fn rollup_unit_row(
    schema: &CubeSchema,
    m_spec: &CuboidSpec,
    order: &[CuboidSpec],
    tuples: &[MTuple],
) -> (u64, u64) {
    let (mut cells, mut rows) = (0u64, 0u64);
    let mut m = CuboidTable::default();
    for t in tuples {
        m.merge_row(t.ids(), t.isb()).expect("uniform window");
        rows += 1;
    }
    cells += TableStorage::len(&m) as u64;
    for cuboid in order {
        if cuboid == m_spec {
            continue;
        }
        let mut target = CuboidTable::default();
        rows +=
            aggregate_into(schema, m_spec, &m, cuboid, &mut target, None).expect("uniform window");
        cells += TableStorage::len(&target) as u64;
    }
    (cells, rows)
}

/// One unit of the arena phase: the same fold work, but every table is
/// taken from the retained working set with its epoch reset — in steady
/// state nothing here touches the global allocator.
fn rollup_unit_arena(
    schema: &CubeSchema,
    m_spec: &CuboidSpec,
    order: &[CuboidSpec],
    tuples: &[MTuple],
    pool: &SharedChunkPool,
    working: &mut FxHashMap<CuboidSpec, ArenaTable>,
) -> (u64, u64) {
    let dims = schema.num_dims();
    let (mut cells, mut rows) = (0u64, 0u64);
    let mut m = working
        .remove(m_spec)
        .unwrap_or_else(|| ArenaTable::new(dims, Arc::clone(pool)));
    m.reset_epoch();
    for t in tuples {
        m.merge_row(t.ids(), t.isb()).expect("uniform window");
        rows += 1;
    }
    cells += TableStorage::len(&m) as u64;
    working.insert(m_spec.clone(), m);
    for cuboid in order {
        if cuboid == m_spec {
            continue;
        }
        let mut target = working
            .remove(cuboid)
            .unwrap_or_else(|| ArenaTable::new(dims, Arc::clone(pool)));
        target.reset_epoch();
        let source = &working[m_spec];
        rows += aggregate_into(schema, m_spec, source, cuboid, &mut target, None)
            .expect("uniform window");
        cells += TableStorage::len(&target) as u64;
        working.insert(cuboid.clone(), target);
    }
    (cells, rows)
}

/// Measures the tier roll-up primitive in both storage layouts: `(row,
/// arena)`. Both phases do bit-identical fold work (same batch, same
/// lattice), so their `cells` and `rows_folded` must agree — the arena
/// phase gets one unmeasured warm-up unit first, because the figure
/// under test is the steady state every later window lives in.
pub fn run_rollup_phases(quick: bool) -> (RollupPhase, RollupPhase) {
    let (schema, layers, tuples) = rollup_workload(quick);
    let order = layers.lattice().bottom_up_order();
    let m_spec = layers.m_layer().clone();
    let units = if quick { 3 } else { 4 };

    let started = Instant::now();
    let ((cells, rows), _, calls) = memtrack::measure_peak_and_calls(|| {
        let (mut cells, mut rows) = (0u64, 0u64);
        for _ in 0..units {
            let (c, r) = rollup_unit_row(&schema, &m_spec, &order, &tuples);
            cells += c;
            rows += r;
        }
        (cells, rows)
    });
    let total = started.elapsed();
    let row = RollupPhase {
        config: "tier roll-up, fresh row tables per unit".to_string(),
        units,
        cells,
        rows_folded: rows,
        total,
        rows_per_sec: rows as f64 / total.as_secs_f64().max(1e-9),
        calls,
        calls_per_unit: calls.total() as f64 / units as f64,
    };

    let pool = ChunkPool::shared();
    let mut working: FxHashMap<CuboidSpec, ArenaTable> = FxHashMap::default();
    // Warm-up unit (unmeasured): builds the retained working set once.
    rollup_unit_arena(&schema, &m_spec, &order, &tuples, &pool, &mut working);
    let started = Instant::now();
    let ((cells, rows), _, calls) = memtrack::measure_peak_and_calls(|| {
        let (mut cells, mut rows) = (0u64, 0u64);
        for _ in 0..units {
            let (c, r) = rollup_unit_arena(&schema, &m_spec, &order, &tuples, &pool, &mut working);
            cells += c;
            rows += r;
        }
        (cells, rows)
    });
    let total = started.elapsed();
    let arena = RollupPhase {
        config: "tier roll-up, epoch-reset arena tables".to_string(),
        units,
        cells,
        rows_folded: rows,
        total,
        rows_per_sec: rows as f64 / total.as_secs_f64().max(1e-9),
        calls,
        calls_per_unit: calls.total() as f64 / units as f64,
    };
    (row, arena)
}

// ---------------------------------------------------------------------------
// Rollover probe
// ---------------------------------------------------------------------------

/// Reclamation latency and allocator behavior at one table size.
#[derive(Debug, Clone, Copy)]
pub struct RolloverPoint {
    /// Distinct cell keys in the table before reclamation.
    pub keys: usize,
    /// Latency of the first epoch reset after the fill (the real
    /// reclamation), nanoseconds.
    pub arena_first_reset_nanos: u64,
    /// Per-reset latency over a loop of resets (stable figure the O(1)
    /// flatness gate uses), nanoseconds.
    pub arena_reset_nanos: f64,
    /// `dealloc` calls during the epoch reset — must be 0.
    pub arena_reset_deallocs: usize,
    /// Latency of dropping a row table of the same cells, nanoseconds.
    pub row_drop_nanos: u64,
    /// `dealloc` calls the row drop performs — one per boxed key.
    pub row_drop_deallocs: usize,
}

/// Table sizes the rollover probe sweeps. The 16x range means an O(N)
/// reclamation would show a ~16x latency spread across the sweep; the
/// arena's epoch reset must stay flat.
pub const ROLLOVER_SIZES: [usize; 3] = [4_096, 16_384, 65_536];

/// Probes rollover reclamation at every size in [`ROLLOVER_SIZES`].
pub fn run_rollover_probe() -> Vec<RolloverPoint> {
    ROLLOVER_SIZES.iter().map(|&keys| probe_one(keys)).collect()
}

fn probe_one(keys: usize) -> RolloverPoint {
    let isb = Isb::new(0, 9, 1.0, 0.25).expect("valid window");
    // Distinct in the first coordinate, so exactly `keys` cells.
    let key_of = |v: usize| [v as u32, (v % 97) as u32, (v % 53) as u32];

    // Arena: fill, time the first (real) epoch reclamation under the
    // allocator meter, then a loop of resets for a stable per-reset
    // figure.
    let pool = ChunkPool::shared();
    let mut table = ArenaTable::new(3, pool);
    for v in 0..keys {
        table.merge_row(&key_of(v), &isb).expect("fresh key");
    }
    let mut first_nanos = 0u64;
    let ((), _, calls) = memtrack::measure_peak_and_calls(|| {
        let t0 = Instant::now();
        table.reset_epoch();
        first_nanos = t0.elapsed().as_nanos() as u64;
    });
    let arena_reset_deallocs = calls.dealloc;
    const RESETS: u32 = 1024;
    let t0 = Instant::now();
    for _ in 0..RESETS {
        table.reset_epoch();
    }
    let arena_reset_nanos = t0.elapsed().as_nanos() as f64 / f64::from(RESETS);
    // The epoch stays usable after the probe (and the resets stay
    // observable side effects).
    table.merge_row(&key_of(0), &isb).expect("fresh epoch");
    assert_eq!(TableStorage::len(&table), 1);

    // Row: the O(N) churn the arena replaces — dropping the table frees
    // every boxed key individually.
    let mut row = CuboidTable::default();
    for v in 0..keys {
        row.insert(CellKey::new(key_of(v).to_vec()), isb);
    }
    let mut drop_nanos = 0u64;
    let ((), _, calls) = memtrack::measure_peak_and_calls(|| {
        let t0 = Instant::now();
        drop(row);
        drop_nanos = t0.elapsed().as_nanos() as u64;
    });
    RolloverPoint {
        keys,
        arena_first_reset_nanos: first_nanos,
        arena_reset_nanos,
        arena_reset_deallocs,
        row_drop_nanos: drop_nanos,
        row_drop_deallocs: calls.dealloc,
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// Prints the three arena tables and returns them (for JSON export).
pub fn print(
    points: &[Point],
    rollup: &(RollupPhase, RollupPhase),
    rollover: &[RolloverPoint],
) -> Vec<Table> {
    let base_rate = points.first().map(|p| p.rows_per_sec).unwrap_or(f64::NAN);
    let base_calls = points.first().map(|p| p.calls_per_unit).unwrap_or(f64::NAN);
    let mut shootout = Table::new(
        format!(
            "Arena: backend shootout on the multi-unit replay ({} units, {} rows folded)",
            points.first().map(|p| p.units).unwrap_or(0),
            fmt_count(points.first().map(|p| p.rows).unwrap_or(0)),
        ),
        &[
            "configuration",
            "rows/sec",
            "total (s)",
            "alloc calls/unit",
            "arena allocs",
            "keys interned",
            "epochs freed",
            "retained",
            "exceptions",
        ],
    );
    for p in points {
        shootout.push_row(vec![
            p.config.clone(),
            format!("{:.0}", p.rows_per_sec),
            fmt_secs(p.total),
            format!("{:.0}", p.calls_per_unit),
            fmt_count(p.arena_alloc_calls),
            fmt_count(p.keys_interned),
            fmt_count(p.epochs_reclaimed),
            fmt_mb(p.arena_bytes_retained),
            fmt_count(p.exception_cells),
        ]);
    }
    shootout.print();
    if let (Some(_), Some(arena)) = (points.first(), points.get(1)) {
        println!(
            "arena vs row: {:.1}x fewer allocator calls per unit, {:.2}x rows/sec",
            base_calls / arena.calls_per_unit.max(1.0),
            arena.rows_per_sec / base_rate,
        );
    }
    println!();

    let (row_phase, arena_phase) = rollup;
    let mut phases = Table::new(
        format!(
            "Arena: allocator calls on the tier roll-up ({} units, {} cells per replay)",
            row_phase.units,
            fmt_count(row_phase.cells),
        ),
        &[
            "phase",
            "rows folded",
            "total (s)",
            "alloc",
            "realloc",
            "dealloc",
            "calls/unit",
        ],
    );
    for p in [row_phase, arena_phase] {
        phases.push_row(vec![
            p.config.clone(),
            fmt_count(p.rows_folded),
            fmt_secs(p.total),
            fmt_count(p.calls.alloc as u64),
            fmt_count(p.calls.realloc as u64),
            fmt_count(p.calls.dealloc as u64),
            format!("{:.0}", p.calls_per_unit),
        ]);
    }
    phases.print();
    println!(
        "tier roll-up churn: {:.0} row vs {:.0} arena allocator calls per unit ({:.0}x fewer)",
        row_phase.calls_per_unit,
        arena_phase.calls_per_unit,
        row_phase.calls_per_unit / arena_phase.calls_per_unit.max(1.0),
    );
    println!();

    let mut probe = Table::new(
        "Arena: window rollover — O(1) epoch reclaim vs O(N) row-table free".to_string(),
        &[
            "keys",
            "reset (ns)",
            "first reset (ns)",
            "reset deallocs",
            "row drop (ns)",
            "row drop deallocs",
        ],
    );
    for p in rollover {
        probe.push_row(vec![
            fmt_count(p.keys as u64),
            format!("{:.0}", p.arena_reset_nanos),
            fmt_count(p.arena_first_reset_nanos),
            fmt_count(p.arena_reset_deallocs as u64),
            fmt_count(p.row_drop_nanos),
            fmt_count(p.row_drop_deallocs as u64),
        ]);
    }
    probe.print();
    println!();
    vec![shootout, phases, probe]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_agrees_on_the_cube() {
        let points = run(true);
        assert_eq!(points.len(), 3);
        // Identical semantics across backends and shards; the alloc
        // figures are advisory here (parallel tests share the global
        // counters), the single-threaded `arena_baseline` bin gates
        // them.
        for p in &points {
            assert_eq!(p.exception_cells, points[0].exception_cells, "{}", p.config);
            assert!(p.rows_per_sec > 0.0, "{}", p.config);
        }
        let (row, arena) = (&points[0], &points[1]);
        assert_eq!(row.rows, arena.rows, "same fold work");
        assert_eq!(row.keys_interned, 0, "row backend has no interner");
        assert!(arena.keys_interned > 0, "arena interned the cube");
        assert!(arena.epochs_reclaimed > 0, "rollovers reclaimed epochs");
        assert!(arena.arena_bytes_retained > 0);
        // The sharded arena engine reports merged counters.
        assert!(points[2].keys_interned > 0);
    }

    #[test]
    fn rollup_phases_do_identical_work() {
        let (row, arena) = run_rollup_phases(true);
        assert_eq!(row.cells, arena.cells, "identical roll-up output");
        assert_eq!(row.rows_folded, arena.rows_folded, "identical fold work");
        // Concurrent tests pollute the process-global call counters, so
        // only a loose ordering is asserted here; the bin asserts the
        // real >=10x gate single-threaded.
        assert!(
            row.calls.total() > arena.calls.total(),
            "row churn {} must exceed arena churn {}",
            row.calls.total(),
            arena.calls.total()
        );
    }

    #[test]
    fn rollover_probe_covers_three_flat_sizes() {
        let points = run_rollover_probe();
        assert_eq!(points.len(), ROLLOVER_SIZES.len());
        for p in &points {
            // The row drop frees at least one allocation per boxed key;
            // the arena reset dealloc count is asserted ==0 only in the
            // single-threaded bin (parallel tests can dealloc mid-probe).
            assert!(
                p.row_drop_deallocs >= p.keys,
                "{} keys freed only {} allocations",
                p.keys,
                p.row_drop_deallocs
            );
            assert!(p.arena_reset_deallocs < 64, "epoch reset frees nothing");
        }
    }
}
