//! **Figure 10**: processing time and memory usage vs the number of
//! levels between the m- and o-layers, structure `D2C10T10K`, 1%
//! exceptions.
//!
//! Paper shape to reproduce: "with the growth of number of levels in the
//! data cube, both processing time and space usage grow exponentially" —
//! the curse of dimensionality (the lattice has `L^D` cuboids).

use super::{run_mo, run_pp, threshold_for_rate, Workload};
use crate::report::{fmt_mb, fmt_secs, Table};
use regcube_core::ExceptionPolicy;
use regcube_datagen::{Dataset, DatasetSpec};
use std::time::Duration;

/// The level axis of the paper.
pub const LEVELS: [u8; 5] = [3, 4, 5, 6, 7];
/// Quick-mode levels.
pub const QUICK_LEVELS: [u8; 3] = [3, 4, 5];

/// One measured sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Levels from the m-layer to the o-layer, inclusive.
    pub levels: u8,
    /// m/o-cubing runtime (seconds).
    pub mo_secs: f64,
    /// popular-path runtime (seconds).
    pub pp_secs: f64,
    /// m/o-cubing allocator peak (bytes).
    pub mo_peak: usize,
    /// popular-path allocator peak (bytes).
    pub pp_peak: usize,
    /// Cuboids in the lattice (`L^D`).
    pub cuboids: u64,
}

/// Runs the sweep at a 1% exception rate.
pub fn run(quick: bool) -> Vec<Point> {
    let (levels, fanout, tuples): (&[u8], u32, usize) = if quick {
        (&QUICK_LEVELS, 4, 2_000)
    } else {
        (&LEVELS, 10, 10_000)
    };
    levels
        .iter()
        .map(|&l| {
            let spec = DatasetSpec::new(2, l, fanout, tuples).unwrap();
            let dataset = Dataset::generate(spec).expect("valid spec");
            let workload = Workload::from_dataset(&dataset);
            let threshold = threshold_for_rate(&workload, 1.0);
            let policy = ExceptionPolicy::slope_threshold(threshold);
            let mo = run_mo(&workload, &policy);
            let pp = run_pp(&workload, &policy);
            Point {
                levels: l,
                mo_secs: mo.seconds,
                pp_secs: pp.seconds,
                mo_peak: mo.alloc_peak,
                pp_peak: pp.alloc_peak,
                cuboids: spec.lattice_cuboids(),
            }
        })
        .collect()
}

/// Prints the two panels and returns them (for JSON export).
pub fn print(points: &[Point], structure: &str) -> Vec<Table> {
    let mut a = Table::new(
        format!("Figure 10a: processing time vs # levels ({structure}, 1% exceptions)"),
        &["levels", "cuboids", "m/o-cubing (s)", "popular-path (s)"],
    );
    let mut b = Table::new(
        format!("Figure 10b: memory usage vs # levels ({structure}, 1% exceptions)"),
        &["levels", "m/o-cubing (MB)", "popular-path (MB)"],
    );
    for p in points {
        a.push_row(vec![
            p.levels.to_string(),
            p.cuboids.to_string(),
            fmt_secs(Duration::from_secs_f64(p.mo_secs)),
            fmt_secs(Duration::from_secs_f64(p.pp_secs)),
        ]);
        b.push_row(vec![
            p.levels.to_string(),
            fmt_mb(p.mo_peak),
            fmt_mb(p.pp_peak),
        ]);
    }
    a.print();
    b.print();
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_growth_is_exponential() {
        let pts = run(true);
        assert_eq!(pts.len(), QUICK_LEVELS.len());
        for pair in pts.windows(2) {
            assert!(pair[1].cuboids > pair[0].cuboids);
        }
        // 3 levels on 2 dims -> 9 cuboids; 5 -> 25.
        assert_eq!(pts[0].cuboids, 9);
        assert_eq!(pts.last().unwrap().cuboids, 25);
    }
}
