//! **Columnar**: struct-of-arrays vs hash-map table layout on the hot
//! tier roll-up.
//!
//! The cube roll-up spends nearly all of its time in the group-by-
//! projection aggregation (`regcube_core::table::aggregate_into`,
//! Theorem 3.2 tier-to-tier compression). This experiment replays the
//! same multi-unit stream through:
//!
//! * a transient `MoCubingEngine` — the row (hash-map) layout baseline;
//! * a `ColumnarCubingEngine` — the same algorithm with the roll-up
//!   running over sorted dense-id component vectors;
//! * a 2-shard `ShardedEngine<ColumnarCubingEngine>` — the columnar
//!   backend composed behind the sharding seam.
//!
//! Reported per configuration: source rows folded per second (the
//! paper's work measure), the true allocator peak (`memtrack`, the
//! peak-RSS proxy) and the analytical table peak. Every configuration
//! must retain the same exception cells — the layouts differ in bytes,
//! never in semantics (the contract/golden suites pin the full cube;
//! this experiment cross-checks while measuring).

use crate::memtrack;
use crate::report::{fmt_count, fmt_mb, fmt_secs, Table};
use regcube_core::columnar::ColumnarCubingEngine;
use regcube_core::engine::CubingEngine;
use regcube_core::shard::ShardedEngine;
use regcube_core::{CriticalLayers, ExceptionPolicy, KernelMode, MTuple, MoCubingEngine};
use regcube_datagen::{Dataset, DatasetSpec};
use regcube_regress::Isb;
use std::time::{Duration, Instant};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Point {
    /// Configuration label.
    pub config: String,
    /// Units replayed.
    pub units: usize,
    /// Source rows folded across the whole replay.
    pub rows: u64,
    /// Throughput in folded source rows per second.
    pub rows_per_sec: f64,
    /// Total replay wall-clock.
    pub total: Duration,
    /// True allocator peak during the replay (peak-RSS proxy).
    pub alloc_peak: usize,
    /// Analytical table-byte peak from the run stats (last unit).
    pub analytical_peak: usize,
    /// Exception cells retained after the last unit (equality check).
    pub exception_cells: u64,
    /// Rows folded through the chunked kernel layer across the replay.
    pub rows_folded_simd: u64,
    /// Rows folded through the scalar per-row path across the replay.
    pub rows_folded_scalar: u64,
}

/// Replays `batches` (one per unit window) through `engine` under the
/// allocator meter.
fn measure(config: &str, batches: &[Vec<MTuple>], mut engine: Box<dyn CubingEngine>) -> Point {
    let started = Instant::now();
    let ((rows, simd, scalar), alloc_peak) = memtrack::measure_peak(|| {
        let (mut rows, mut simd, mut scalar) = (0u64, 0u64, 0u64);
        for batch in batches {
            engine.ingest_unit(batch).expect("valid replay batch");
            let s = engine.stats();
            rows += s.rows_folded;
            simd += s.rows_folded_simd;
            scalar += s.rows_folded_scalar;
        }
        (rows, simd, scalar)
    });
    let total = started.elapsed();
    Point {
        config: config.to_string(),
        units: batches.len(),
        rows,
        rows_per_sec: rows as f64 / total.as_secs_f64().max(1e-9),
        total,
        alloc_peak,
        analytical_peak: engine.stats().peak_bytes,
        exception_cells: engine.result().total_exception_cells(),
        rows_folded_simd: simd,
        rows_folded_scalar: scalar,
    }
}

/// The replay workload: schema, layers, policy and one batch of tuples
/// per unit window (every batch opens a unit — the full tier roll-up
/// the layouts are racing on).
fn workload(
    quick: bool,
) -> (
    regcube_olap::CubeSchema,
    CriticalLayers,
    ExceptionPolicy,
    Vec<Vec<MTuple>>,
) {
    let (tuples_n, units, fanout) = if quick { (2_000, 3, 4) } else { (50_000, 6, 8) };
    let ticks = 16usize;
    let spec = DatasetSpec::new(3, 3, fanout, tuples_n)
        .unwrap()
        .with_series_len(ticks * units);
    let dataset = Dataset::generate(spec).expect("valid spec");
    let schema = dataset.schema.clone();
    let layers = CriticalLayers::new(&schema, dataset.o_layer.clone(), dataset.m_layer.clone())
        .expect("valid layers");
    let policy = ExceptionPolicy::slope_threshold(0.5);
    let unit_batches: Vec<Vec<MTuple>> = (0..units)
        .map(|u| {
            let start = (u * ticks) as i64;
            let end = start + ticks as i64 - 1;
            dataset
                .tuples
                .iter()
                .map(|t| {
                    let isb = Isb::new(start, end, t.isb.base(), t.isb.slope()).expect("window");
                    MTuple::new(t.ids.clone(), isb)
                })
                .collect()
        })
        .collect();
    (schema, layers, policy, unit_batches)
}

/// Runs the sweep and returns one point per configuration.
pub fn run(quick: bool) -> Vec<Point> {
    let (schema, layers, policy, unit_batches) = workload(quick);
    vec![
        measure(
            "tier roll-up, row (hash-map) layout",
            &unit_batches,
            Box::new(
                MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone())
                    .expect("valid engine"),
            ),
        ),
        measure(
            "tier roll-up, columnar layout",
            &unit_batches,
            // Both kernel modes are pinned programmatically so the race
            // stays kernel-vs-scalar even when the suite runs under
            // REGCUBE_SCALAR_KERNELS=1.
            Box::new(
                ColumnarCubingEngine::new(schema.clone(), layers.clone(), policy.clone())
                    .expect("valid engine")
                    .with_kernel_mode(KernelMode::Auto),
            ),
        ),
        measure(
            "columnar layout, scalar kernels",
            &unit_batches,
            Box::new(
                ColumnarCubingEngine::new(schema.clone(), layers.clone(), policy.clone())
                    .expect("valid engine")
                    .with_kernel_mode(KernelMode::Scalar),
            ),
        ),
        measure(
            "columnar, 2 shards",
            &unit_batches,
            Box::new(ShardedEngine::columnar(schema, layers, policy, 2).expect("valid engine")),
        ),
    ]
}

/// The kernel phase alone: the same columnar replay with auto kernel
/// dispatch and with the scalar fallback forced, in that order. This
/// is the pair `col_baseline` gates on — both runs happen in this
/// process, so their rows/sec ratio normalizes machine speed out.
pub fn run_kernel_phases(quick: bool) -> (Point, Point) {
    let (schema, layers, policy, unit_batches) = workload(quick);
    let vectorized = measure(
        "columnar tier roll-up, kernel dispatch",
        &unit_batches,
        Box::new(
            ColumnarCubingEngine::new(schema.clone(), layers.clone(), policy.clone())
                .expect("valid engine")
                .with_kernel_mode(KernelMode::Auto),
        ),
    );
    let scalar = measure(
        "columnar tier roll-up, scalar fallback",
        &unit_batches,
        Box::new(
            ColumnarCubingEngine::new(schema, layers, policy)
                .expect("valid engine")
                .with_kernel_mode(KernelMode::Scalar),
        ),
    );
    (vectorized, scalar)
}

/// Prints the sweep and returns it (for JSON export).
pub fn print(points: &[Point]) -> Vec<Table> {
    let baseline = points.first();
    let base_rate = baseline.map(|p| p.rows_per_sec).unwrap_or(f64::NAN);
    let mut t = Table::new(
        format!(
            "Columnar: table-layout shootout on the tier roll-up ({} units, {} rows folded)",
            points.first().map(|p| p.units).unwrap_or(0),
            fmt_count(points.first().map(|p| p.rows).unwrap_or(0)),
        ),
        &[
            "configuration",
            "rows/sec",
            "total (s)",
            "speedup",
            "kernel rows",
            "scalar rows",
            "alloc peak",
            "table peak",
            "exceptions",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.config.clone(),
            format!("{:.0}", p.rows_per_sec),
            fmt_secs(p.total),
            format!("{:.2}x", p.rows_per_sec / base_rate),
            fmt_count(p.rows_folded_simd),
            fmt_count(p.rows_folded_scalar),
            fmt_mb(p.alloc_peak),
            fmt_mb(p.analytical_peak),
            fmt_count(p.exception_cells),
        ]);
    }
    t.print();
    if let (Some(row), Some(col)) = (points.first(), points.get(1)) {
        println!(
            "columnar vs row: {:.2}x rows/sec, {:.2}x lower alloc peak, {:.2}x lower table peak",
            col.rows_per_sec / row.rows_per_sec,
            row.alloc_peak as f64 / col.alloc_peak.max(1) as f64,
            row.analytical_peak as f64 / col.analytical_peak.max(1) as f64,
        );
    }
    if let (Some(col), Some(scalar)) = (points.get(1), points.get(2)) {
        println!(
            "kernel dispatch vs scalar fallback: {:.2}x rows/sec",
            col.rows_per_sec / scalar.rows_per_sec,
        );
    }
    println!();
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_agrees_on_the_cube() {
        let points = run(true);
        assert_eq!(points.len(), 4);
        // Identical semantics across layouts, kernel modes and shards:
        // same retained exceptions (throughput varies with the
        // hardware, so only the semantics are asserted).
        for p in &points {
            assert_eq!(p.exception_cells, points[0].exception_cells, "{}", p.config);
            assert!(p.rows_per_sec > 0.0, "{}", p.config);
            assert!(p.alloc_peak > 0, "{}", p.config);
        }
        // The unsharded layouts do exactly the same folding work
        // (sharded roll-ups fold per-shard partials, so their row count
        // legitimately differs) — the kernel mode only moves rows
        // between the dispatch counters.
        assert_eq!(points[0].rows, points[1].rows);
        assert_eq!(points[1].rows, points[2].rows);
        let (auto, scalar) = (&points[1], &points[2]);
        assert!(auto.rows_folded_simd > 0, "kernels reached");
        assert_eq!(scalar.rows_folded_simd, 0, "fallback forced");
        for p in [auto, scalar] {
            assert_eq!(p.rows, p.rows_folded_simd + p.rows_folded_scalar);
        }
        // The row layout has no kernel dispatch at all.
        assert_eq!(points[0].rows_folded_simd, 0);
        assert_eq!(points[0].rows_folded_scalar, 0);
    }
}
