//! **Figure 8**: processing time (a) and memory usage (b) vs the
//! percentage of exception cells, dataset `D3L3C10T100K`.
//!
//! Paper shape to reproduce:
//! * (a) m/o-cubing's runtime is nearly flat in the exception rate (it
//!   computes every cell regardless), only "slightly higher at high
//!   exception rate"; popular-path is cheap at low rates and its cost
//!   rises with the rate, since it computes exactly the drilled cells.
//! * (b) m/o-cubing's memory grows strongly with the rate (only exception
//!   cells are retained); popular-path is much flatter and *higher at low
//!   rates* (the full path is stored no matter what).

use super::{run_mo, run_pp, threshold_for_rate, Workload};
use crate::report::{fmt_count, fmt_mb, fmt_secs, Table};
use regcube_core::ExceptionPolicy;
use regcube_datagen::{Dataset, DatasetSpec};
use std::time::Duration;

/// The exception-rate axis of the paper (in percent).
pub const RATES: [f64; 4] = [0.1, 1.0, 10.0, 100.0];

/// One measured sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Exception rate in percent.
    pub rate: f64,
    /// m/o-cubing runtime (seconds).
    pub mo_secs: f64,
    /// popular-path runtime (seconds).
    pub pp_secs: f64,
    /// m/o-cubing allocator peak (bytes).
    pub mo_peak: usize,
    /// popular-path allocator peak (bytes).
    pub pp_peak: usize,
    /// m/o-cubing retained exception cells.
    pub mo_exceptions: u64,
    /// popular-path retained exception cells.
    pub pp_exceptions: u64,
}

/// Runs the sweep. `quick` shrinks the dataset (T5K, C4) for smoke runs;
/// the default is the paper's `D3L3C10T100K`.
pub fn run(quick: bool) -> Vec<Point> {
    let spec = if quick {
        DatasetSpec::new(3, 3, 4, 5_000).unwrap()
    } else {
        DatasetSpec::d3l3c10t100k()
    };
    let dataset = Dataset::generate(spec).expect("valid spec");
    let workload = Workload::from_dataset(&dataset);
    sweep(&workload)
}

/// Runs the sweep over a prepared workload (used by the Criterion bench
/// with smaller data).
pub fn sweep(workload: &Workload) -> Vec<Point> {
    RATES
        .iter()
        .map(|&rate| {
            let threshold = threshold_for_rate(workload, rate);
            let policy = ExceptionPolicy::slope_threshold(threshold);
            let mo = run_mo(workload, &policy);
            let pp = run_pp(workload, &policy);
            Point {
                rate,
                mo_secs: mo.seconds,
                pp_secs: pp.seconds,
                mo_peak: mo.alloc_peak,
                pp_peak: pp.alloc_peak,
                mo_exceptions: mo.exception_cells,
                pp_exceptions: pp.exception_cells,
            }
        })
        .collect()
}

/// Prints the two panels the way the paper plots them and returns them
/// (for JSON export).
pub fn print(points: &[Point], dataset_name: &str) -> Vec<Table> {
    let mut a = Table::new(
        format!("Figure 8a: processing time vs exception % ({dataset_name})"),
        &["exception %", "m/o-cubing (s)", "popular-path (s)"],
    );
    let mut b = Table::new(
        format!("Figure 8b: memory usage vs exception % ({dataset_name})"),
        &[
            "exception %",
            "m/o-cubing (MB)",
            "popular-path (MB)",
            "exc cells m/o",
            "exc cells pp",
        ],
    );
    for p in points {
        a.push_row(vec![
            format!("{}", p.rate),
            fmt_secs(Duration::from_secs_f64(p.mo_secs)),
            fmt_secs(Duration::from_secs_f64(p.pp_secs)),
        ]);
        b.push_row(vec![
            format!("{}", p.rate),
            fmt_mb(p.mo_peak),
            fmt_mb(p.pp_peak),
            fmt_count(p.mo_exceptions),
            fmt_count(p.pp_exceptions),
        ]);
    }
    a.print();
    b.print();
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_datagen::{Dataset, DatasetSpec};

    #[test]
    fn sweep_shapes_match_the_paper() {
        let d = Dataset::generate(DatasetSpec::new(3, 2, 3, 2_000).unwrap()).unwrap();
        let w = Workload::from_dataset(&d);
        let pts = sweep(&w);
        assert_eq!(pts.len(), RATES.len());
        // Exceptions grow monotonically with the rate for both algorithms.
        for pair in pts.windows(2) {
            assert!(pair[1].mo_exceptions >= pair[0].mo_exceptions);
            assert!(pair[1].pp_exceptions >= pair[0].pp_exceptions);
        }
        // At 100% both algorithms retain every between-cell, and the
        // counts agree (the always-exceptional equivalence).
        let last = pts.last().unwrap();
        assert_eq!(last.mo_exceptions, last.pp_exceptions);
        assert!(last.mo_exceptions > 0);
        // At 0.1% popular-path retains no more than m/o-cubing.
        assert!(pts[0].pp_exceptions <= pts[0].mo_exceptions);
    }
}
