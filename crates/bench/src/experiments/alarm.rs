//! **Alarm**: per-unit overhead of delta-driven alarm sinks vs. the
//! rescan consumer they replace.
//!
//! Before the alarm subsystem, anything reacting to exceptions had to
//! rescan the cube's retained stores after every unit: rebuild per-depth
//! counts, re-rank the hottest cells and diff the full exception set
//! against the previous unit's to discover raises/clears. The
//! [`regcube_core::alarm`] sinks consume the engine's `UnitDelta`
//! instead — O(|delta|) bookkeeping per unit — so their overhead should
//! track the *churn*, not the exception population.
//!
//! The experiment replays the same multi-unit stream (a rotating slice
//! of slopes rescaled per unit so exception status genuinely flips)
//! through one `MoCubingEngine` four times:
//!
//! * **ingest only** — no consumer, the cost floor;
//! * **rescan consumer** — the pre-delta pattern described above;
//! * **delta sinks** — `AlarmLog` + `ThresholdEscalator` +
//!   `DashboardSummary` fed through a `SinkSet` (the log refreshes
//!   open-episode peaks and the escalator sweeps its tracked cells, so
//!   these two are O(open episodes) per unit by design);
//! * **delta dashboard only** — the strict O(|delta|) hot path.
//!
//! Both consumers must agree with the cube on the final active
//! exception count — the speedup is free of semantic drift.

use crate::report::{fmt_count, fmt_secs, Table};
use regcube_core::alarm::{
    self, AlarmContext, AlarmLog, DashboardSummary, SharedSink, SinkSet, ThresholdEscalator,
};
use regcube_core::engine::{CubingEngine, MoCubingEngine, UnitDelta};
use regcube_core::{CriticalLayers, CubeResult, ExceptionPolicy, MTuple};
use regcube_datagen::{Dataset, DatasetSpec};
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::{FxHashMap, FxHashSet};
use regcube_olap::CuboidSpec;
use regcube_regress::Isb;
use std::time::{Duration, Instant};

/// How many hottest cells the rescan consumer re-ranks per unit. (The
/// delta dashboard answers a raise-time-scored variant of this query
/// off the hot path — live per-unit re-scoring is exactly the rescan
/// work the delta path avoids.)
const TOP_K: usize = 8;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Point {
    /// Configuration label.
    pub config: String,
    /// Units replayed.
    pub units: usize,
    /// Total replay wall-clock.
    pub total: Duration,
    /// Consumer overhead per unit over the ingest-only floor.
    pub overhead_per_unit: Duration,
    /// Active exception cells the consumer reports after the last unit
    /// (0 for the ingest-only floor).
    pub active_cells: u64,
    /// Exception episodes the consumer observed opening (0 for the
    /// ingest-only floor).
    pub episodes_opened: u64,
}

/// The replay input: one batch per unit window. Each unit, a rotating
/// ~8% of the streams has its slope collapsed to a tenth (and restored
/// the next unit), so exception status genuinely flips — but, as in a
/// real stream, most of the population is stable and |delta| stays far
/// below the exception population.
fn unit_batches(dataset: &Dataset, units: usize, ticks: usize) -> Vec<Vec<MTuple>> {
    (0..units)
        .map(|u| {
            let start = (u * ticks) as i64;
            let end = start + ticks as i64 - 1;
            dataset
                .tuples
                .iter()
                .enumerate()
                .map(|(idx, t)| {
                    let scale = if idx % 12 == u % 12 { 0.1 } else { 1.0 };
                    let isb = Isb::new(start, end, t.isb.base(), t.isb.slope() * scale)
                        .expect("valid window");
                    MTuple::new(t.ids.clone(), isb)
                })
                .collect()
        })
        .collect()
}

/// Replays every batch through a fresh engine, handing each unit's
/// delta and post-batch cube to `consume`. Returns the total wall-clock.
fn replay(
    schema: &regcube_olap::CubeSchema,
    layers: &CriticalLayers,
    policy: &ExceptionPolicy,
    batches: &[Vec<MTuple>],
    mut consume: impl FnMut(&UnitDelta, &CubeResult),
) -> Duration {
    let mut engine = MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone())
        .expect("valid engine");
    let started = Instant::now();
    for batch in batches {
        let delta = engine.ingest_unit(batch).expect("valid replay batch");
        consume(&delta, engine.result());
    }
    started.elapsed()
}

/// The pre-delta consumer: after every unit, rebuild all reaction state
/// by scanning the cube's retained exception stores from scratch.
#[derive(Default)]
struct RescanConsumer {
    prev: FxHashSet<(CuboidSpec, CellKey)>,
    episodes_opened: u64,
    active_cells: u64,
    by_depth: FxHashMap<u32, u64>,
    hottest: Vec<((CuboidSpec, CellKey), f64)>,
}

impl RescanConsumer {
    fn on_unit(&mut self, result: &CubeResult) {
        // Full scan #1: the live set, per-depth counts and scores.
        let mut live: FxHashSet<(CuboidSpec, CellKey)> = FxHashSet::default();
        self.by_depth.clear();
        let mut scored: Vec<((CuboidSpec, CellKey), f64)> = Vec::new();
        for (cuboid, cell, isb) in result.iter_exceptions() {
            live.insert((cuboid.clone(), cell.clone()));
            *self.by_depth.entry(cuboid.total_depth()).or_insert(0) += 1;
            scored.push(((cuboid.clone(), cell.clone()), isb.slope().abs()));
        }
        // Re-rank the hottest cells from scratch.
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(TOP_K);
        self.hottest = scored;
        // Full diff against the previous unit to find the raises.
        self.episodes_opened += live.difference(&self.prev).count() as u64;
        self.active_cells = live.len() as u64;
        self.prev = live;
    }
}

/// Runs the comparison and returns one point per configuration.
pub fn run(quick: bool) -> Vec<Point> {
    let (tuples_n, units, fanout) = if quick {
        (1_200, 6, 4)
    } else {
        (30_000, 12, 8)
    };
    let ticks = 16usize;
    let spec = DatasetSpec::new(3, 3, fanout, tuples_n)
        .unwrap()
        .with_series_len(ticks * units);
    let dataset = Dataset::generate(spec).expect("valid spec");
    let schema = dataset.schema.clone();
    let layers = CriticalLayers::new(&schema, dataset.o_layer.clone(), dataset.m_layer.clone())
        .expect("valid layers");
    // A mid-distribution threshold keeps a healthy exception population
    // whose membership churns as the per-unit slope scale cycles.
    let policy = ExceptionPolicy::slope_threshold(crate::experiments::threshold_for_rate(
        &crate::experiments::Workload {
            name: String::new(),
            schema: schema.clone(),
            layers: layers.clone(),
            tuples: dataset
                .tuples
                .iter()
                .map(|t| MTuple::new(t.ids.clone(), t.isb))
                .collect(),
        },
        10.0,
    ));
    let batches = unit_batches(&dataset, units, ticks);

    // Floor: ingestion with no consumer at all.
    let pure = replay(&schema, &layers, &policy, &batches, |_, _| {});
    let per_unit = |total: Duration| {
        Duration::from_nanos((total.saturating_sub(pure)).as_nanos() as u64 / units as u64)
    };

    // The pre-delta pattern: full rescans every unit.
    let mut rescan = RescanConsumer::default();
    let rescan_total = replay(&schema, &layers, &policy, &batches, |_, result| {
        rescan.on_unit(result);
    });

    // The alarm subsystem: delta-driven sinks.
    let log = alarm::shared(AlarmLog::new(1024));
    let escalator = alarm::shared(ThresholdEscalator::new(3, 6, 8));
    let dashboard = alarm::shared(DashboardSummary::new());
    let sinks: SinkSet = [
        log.clone() as SharedSink,
        escalator.clone() as SharedSink,
        dashboard.clone() as SharedSink,
    ]
    .into_iter()
    .collect();
    let sink_total = replay(&schema, &layers, &policy, &batches, |delta, result| {
        let errors = sinks.dispatch(delta, &AlarmContext::new(result, delta));
        assert!(errors.is_empty(), "built-in sinks never fail");
    });

    // The O(|delta|) hot path in isolation: the dashboard sink alone
    // (the log refreshes open-episode peaks and the escalator sweeps
    // its tracked cells — O(open episodes) per unit by design).
    let dash_only = alarm::shared(DashboardSummary::new());
    let dash_sinks: SinkSet = [dash_only.clone() as SharedSink].into_iter().collect();
    let dash_total = replay(&schema, &layers, &policy, &batches, |delta, result| {
        dash_sinks.dispatch(delta, &AlarmContext::new(result, delta));
    });

    let dashboard = dashboard.lock().unwrap();
    let dash_only = dash_only.lock().unwrap();
    let log = log.lock().unwrap();
    vec![
        Point {
            config: "ingest only (floor)".into(),
            units,
            total: pure,
            overhead_per_unit: Duration::ZERO,
            active_cells: 0,
            episodes_opened: 0,
        },
        Point {
            config: "rescan consumer (pre-delta)".into(),
            units,
            total: rescan_total,
            overhead_per_unit: per_unit(rescan_total),
            active_cells: rescan.active_cells,
            episodes_opened: rescan.episodes_opened,
        },
        Point {
            config: "delta sinks (log+escalator+dashboard)".into(),
            units,
            total: sink_total,
            overhead_per_unit: per_unit(sink_total),
            active_cells: dashboard.active_cells(),
            episodes_opened: log.opened_total(),
        },
        Point {
            config: "delta dashboard only (O(|delta|))".into(),
            units,
            total: dash_total,
            overhead_per_unit: per_unit(dash_total),
            active_cells: dash_only.active_cells(),
            episodes_opened: dash_only.appeared_total(),
        },
    ]
}

/// Prints the comparison and returns it (for JSON export).
pub fn print(points: &[Point]) -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "Alarm: per-unit consumer overhead ({} units replayed)",
            points.first().map(|p| p.units).unwrap_or(0)
        ),
        &[
            "configuration",
            "total (s)",
            "overhead/unit (µs)",
            "active cells",
            "episodes",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.config.clone(),
            fmt_secs(p.total),
            format!("{:.1}", p.overhead_per_unit.as_secs_f64() * 1e6),
            fmt_count(p.active_cells),
            fmt_count(p.episodes_opened),
        ]);
    }
    t.print();
    if let (Some(rescan), Some(dash)) = (points.get(1), points.get(3)) {
        let ratio =
            rescan.overhead_per_unit.as_secs_f64() / dash.overhead_per_unit.as_secs_f64().max(1e-9);
        println!(
            "the O(|delta|) dashboard tracks the same {} active cells at {:.1}x less per-unit overhead than the rescan consumer",
            fmt_count(dash.active_cells),
            ratio
        );
    }
    println!();
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumers_agree_with_the_cube() {
        let points = run(true);
        assert_eq!(points.len(), 4);
        let (rescan, sinks, dash) = (&points[1], &points[2], &points[3]);
        // Same live set and same episode count, however it was derived.
        assert_eq!(rescan.active_cells, sinks.active_cells);
        assert_eq!(rescan.active_cells, dash.active_cells);
        assert_eq!(rescan.episodes_opened, sinks.episodes_opened);
        assert_eq!(rescan.episodes_opened, dash.episodes_opened);
        assert!(rescan.active_cells > 0, "the workload must have exceptions");
        assert!(
            rescan.episodes_opened > rescan.active_cells,
            "per-unit churn must open and close episodes ({} opened, {} active)",
            rescan.episodes_opened,
            rescan.active_cells
        );
    }
}
