//! **Lateness**: cost and accounting of watermark-based out-of-order
//! ingestion.
//!
//! The paper's streaming model (Section 4.5) assumes tick-ordered
//! arrival; `EngineConfig::with_reordering` lifts that assumption with a
//! bounded reordering buffer, a low watermark and an exact late-record
//! amendment path over the warehoused tilt frames. This experiment
//! replays the same stream through four configurations:
//!
//! * **sorted, reordering off** — the strictly-ordered ingest path (the
//!   cost floor, byte-identical to the pre-watermark engine);
//! * **sorted, reordering on** — what the buffer costs when the stream
//!   was ordered all along;
//! * **shuffled within lateness** — arrival order permuted with bounded
//!   displacement, watermark-driven closes (bit-identical results by
//!   construction, so the alarm totals must agree with the floor);
//! * **shuffled + stragglers** — additionally, a slice of records
//!   arrives after their unit closed (exact tilt amendments) or beyond
//!   the allowed lateness (counted drops).

use crate::report::{fmt_count, fmt_secs, Table};
use regcube_core::ExceptionPolicy;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_stream::{EngineConfig, OnlineEngine, RawRecord};
use regcube_tilt::TiltSpec;
use std::time::{Duration, Instant};

/// Allowed lateness in units for the reorder-enabled configurations.
const LATENESS: i64 = 2;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Point {
    /// Configuration label.
    pub config: String,
    /// Records delivered.
    pub records: usize,
    /// Units closed.
    pub units: usize,
    /// Total replay wall-clock.
    pub total: Duration,
    /// Alarms raised across all units.
    pub alarms: u64,
    /// Late amendments applied to the warehoused tilt frames.
    pub amendments: u64,
    /// Beyond-lateness records counted and dropped.
    pub dropped: u64,
}

/// The sorted stream: `cells` leaf cells per tick over `units` windows,
/// one cell family ramping hot every fourth unit so alarms genuinely
/// fire.
fn sorted_stream(units: i64, ticks_per_unit: usize, cells: u32) -> Vec<RawRecord> {
    let tpu = ticks_per_unit as i64;
    let mut records = Vec::with_capacity((units * tpu * cells as i64) as usize);
    for unit in 0..units {
        for t in unit * tpu..(unit + 1) * tpu {
            for c in 0..cells {
                let ids = vec![c % 16, (c / 16) % 16];
                let hot = unit % 4 == 3 && c % 8 == 0;
                let value = if hot {
                    2.0 * (t - unit * tpu) as f64
                } else {
                    1.0 + 0.05 * (c % 5) as f64
                };
                records.push(RawRecord::new(ids, t, value));
            }
        }
    }
    records
}

/// Permutes arrival order with displacement bounded by the allowed
/// lateness: a stable sort by deterministically jittered tick.
fn shuffle_within_lateness(sorted: &[RawRecord], ticks_per_unit: usize) -> Vec<RawRecord> {
    let span = LATENESS * ticks_per_unit as i64;
    let mut keyed: Vec<(i64, usize, RawRecord)> = sorted
        .iter()
        .enumerate()
        .map(|(i, r)| (r.tick + (i as i64 * 7919) % span, i, r.clone()))
        .collect();
    keyed.sort_by_key(|(k, i, _)| (*k, *i));
    keyed.into_iter().map(|(_, _, r)| r).collect()
}

/// Builds an engine over the synthetic leaf schema; `reorder_cap == 0`
/// disables the watermark stage explicitly.
fn engine(ticks_per_unit: usize, reorder_cap: usize) -> OnlineEngine {
    let schema = CubeSchema::synthetic(2, 2, 4).expect("valid schema");
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(1.0))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("day", 6)]).expect("valid spec"))
    .with_ticks_per_unit(ticks_per_unit)
    .with_reordering(reorder_cap, LATENESS)
    .build()
    .expect("valid config")
}

/// Replays a sorted stream through the strictly-ordered path with
/// explicit unit-boundary closes.
fn run_sorted_off(records: &[RawRecord], ticks_per_unit: usize) -> (Duration, usize, u64) {
    let mut e = engine(ticks_per_unit, 0);
    let tpu = ticks_per_unit as i64;
    let started = Instant::now();
    let (mut units, mut alarms) = (0usize, 0u64);
    for r in records {
        while r.tick >= (e.open_unit() + 1) * tpu {
            alarms += e.close_unit().expect("close").alarms.len() as u64;
            units += 1;
        }
        e.ingest(r).expect("sorted ingest");
    }
    alarms += e.close_unit().expect("close").alarms.len() as u64;
    units += 1;
    (started.elapsed(), units, alarms)
}

/// Replays any stream through the watermark path (`drain_ready` per
/// record, final `flush`), returning the wall-clock and the accounting.
fn run_reordered(records: &[RawRecord], ticks_per_unit: usize) -> (Duration, usize, u64, u64, u64) {
    let mut e = engine(ticks_per_unit, LATENESS as usize + 3);
    let started = Instant::now();
    let (mut units, mut alarms, mut amendments) = (0usize, 0u64, 0u64);
    let mut consume = |reports: Vec<regcube_stream::UnitReport>| {
        for r in reports {
            units += 1;
            alarms += r.alarms.len() as u64;
            amendments += r.late_amendments.len() as u64;
        }
    };
    for r in records {
        e.ingest(r).expect("in-capacity ingest");
        consume(e.drain_ready().expect("drain"));
    }
    consume(e.flush().expect("flush"));
    let total = started.elapsed();
    (total, units, alarms, amendments, e.late_dropped())
}

/// Runs the comparison and returns one point per configuration.
pub fn run(quick: bool) -> Vec<Point> {
    let (units, ticks, cells) = if quick {
        (8i64, 8usize, 32u32)
    } else {
        (24, 16, 256)
    };
    let sorted = sorted_stream(units, ticks, cells);
    let shuffled = shuffle_within_lateness(&sorted, ticks);

    // Stragglers: pull every 97th record of the first half out of the
    // shuffled stream; half are re-delivered `LATENESS + 1` units late
    // (amendments), half at the very end of the stream (beyond-lateness
    // drops).
    let mut with_stragglers = Vec::with_capacity(shuffled.len());
    let mut amend_due: Vec<(usize, RawRecord)> = Vec::new();
    let mut drop_tail: Vec<RawRecord> = Vec::new();
    for (i, r) in shuffled.iter().enumerate() {
        let early = (r.tick as usize) < units as usize * ticks / 2;
        if early && i % 97 == 0 {
            if i % 194 == 0 {
                let due = with_stragglers.len() + (LATENESS as usize + 1) * ticks * cells as usize;
                amend_due.push((due, r.clone()));
            } else {
                drop_tail.push(r.clone());
            }
        } else {
            with_stragglers.push(r.clone());
        }
    }
    amend_due.sort_by_key(|(due, _)| *due);
    let mut rebuilt = Vec::with_capacity(shuffled.len());
    let mut next = amend_due.into_iter().peekable();
    for (i, r) in with_stragglers.into_iter().enumerate() {
        while next.peek().is_some_and(|(due, _)| *due <= i) {
            rebuilt.push(next.next().expect("peeked").1);
        }
        rebuilt.push(r);
    }
    rebuilt.extend(next.map(|(_, r)| r));
    rebuilt.extend(drop_tail);
    let with_stragglers = rebuilt;

    let (floor_total, floor_units, floor_alarms) = run_sorted_off(&sorted, ticks);
    let (on_total, on_units, on_alarms, on_amend, on_drop) = run_reordered(&sorted, ticks);
    let (sh_total, sh_units, sh_alarms, sh_amend, sh_drop) = run_reordered(&shuffled, ticks);
    let (st_total, st_units, st_alarms, st_amend, st_drop) = run_reordered(&with_stragglers, ticks);

    vec![
        Point {
            config: "sorted, reordering off (floor)".into(),
            records: sorted.len(),
            units: floor_units,
            total: floor_total,
            alarms: floor_alarms,
            amendments: 0,
            dropped: 0,
        },
        Point {
            config: "sorted, reordering on".into(),
            records: sorted.len(),
            units: on_units,
            total: on_total,
            alarms: on_alarms,
            amendments: on_amend,
            dropped: on_drop,
        },
        Point {
            config: format!("shuffled within lateness {LATENESS}"),
            records: shuffled.len(),
            units: sh_units,
            total: sh_total,
            alarms: sh_alarms,
            amendments: sh_amend,
            dropped: sh_drop,
        },
        Point {
            config: "shuffled + stragglers".into(),
            records: with_stragglers.len(),
            units: st_units,
            total: st_total,
            alarms: st_alarms,
            amendments: st_amend,
            dropped: st_drop,
        },
    ]
}

/// Prints the comparison and returns it (for JSON export).
pub fn print(points: &[Point]) -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "Lateness: watermark reordering on {} records",
            points
                .first()
                .map(|p| fmt_count(p.records as u64))
                .unwrap_or_default()
        ),
        &[
            "configuration",
            "total (s)",
            "krec/s",
            "units",
            "alarms",
            "amendments",
            "dropped",
        ],
    );
    for p in points {
        let krps = p.records as f64 / p.total.as_secs_f64().max(1e-9) / 1e3;
        t.push_row(vec![
            p.config.clone(),
            fmt_secs(p.total),
            format!("{krps:.0}"),
            fmt_count(p.units as u64),
            fmt_count(p.alarms),
            fmt_count(p.amendments),
            fmt_count(p.dropped),
        ]);
    }
    t.print();
    if let (Some(floor), Some(shuffled)) = (points.first(), points.get(2)) {
        println!(
            "bounded reordering reproduces the floor's {} alarms bit-identically at {:.2}x the floor's wall-clock",
            fmt_count(floor.alarms),
            shuffled.total.as_secs_f64() / floor.total.as_secs_f64().max(1e-9)
        );
    }
    println!();
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordered_configurations_agree_with_the_floor() {
        let points = run(true);
        assert_eq!(points.len(), 4);
        let (floor, on, shuffled, stragglers) = (&points[0], &points[1], &points[2], &points[3]);
        assert!(floor.alarms > 0, "the workload must alarm");
        assert_eq!(floor.units, on.units);
        assert_eq!(floor.alarms, on.alarms, "sorted + reordering is exact");
        assert_eq!(floor.alarms, shuffled.alarms, "bounded shuffle is exact");
        assert_eq!(shuffled.amendments, 0);
        assert_eq!(shuffled.dropped, 0);
        assert!(stragglers.amendments > 0, "displaced records amend");
        assert!(stragglers.dropped > 0, "end-of-stream stragglers drop");
    }
}
