//! **Section 5, closing remark**: "in stream data applications, it is
//! likely that one just need to incrementally compute the newly generated
//! stream data. In this case, the computation time should be
//! substantially shorter" — we measure one online per-unit recomputation
//! against a monolithic recomputation over the accumulated window.

use crate::memtrack;
use crate::report::{fmt_mb, fmt_secs, Table};
use regcube_core::engine::{CubingEngine, MoCubingEngine};
use regcube_core::result::Algorithm;
use regcube_core::{mo_cubing, CriticalLayers, ExceptionPolicy, MTuple};
use regcube_datagen::{Dataset, DatasetSpec};
use regcube_regress::{aggregate, Isb};
use regcube_stream::RawRecord;
use regcube_tilt::TiltSpec;
use std::time::{Duration, Instant};

/// The measured comparison.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalReport {
    /// Units replayed.
    pub units: usize,
    /// Mean per-unit online recomputation time.
    pub per_unit: Duration,
    /// One full computation over the whole accumulated window.
    pub full: Duration,
    /// Merging the last `1/units` slice into a warm [`MoCubingEngine`]
    /// holding the rest of the window (the trait's same-window
    /// incremental path).
    pub engine_merge: Duration,
    /// Allocator peak of the online engine over the replay (bytes).
    pub online_peak: usize,
    /// Speed ratio `full / per_unit`.
    pub speedup: f64,
    /// Speed ratio `full / engine_merge`.
    pub merge_speedup: f64,
}

/// Replays `units` m-layer time units of a synthetic stream through the
/// online engine, then computes the same data monolithically.
///
/// Stream activity is *sparse per unit*: each unit only a `1/units` slice
/// of the streams produces new data (round-robin), which is the situation
/// the paper's remark addresses — the incremental pass only touches the
/// newly generated data while the monolithic pass cubes everything.
pub fn run(quick: bool) -> IncrementalReport {
    let (tuples_n, units, ticks) = if quick { (500, 4, 8) } else { (20_000, 8, 16) };
    let spec = DatasetSpec::new(2, 2, 8, tuples_n)
        .unwrap()
        .with_series_len(ticks * units);
    let dataset = Dataset::generate(spec).expect("valid spec");
    let schema = dataset.schema.clone();
    let policy = ExceptionPolicy::slope_threshold(0.5);

    // ---- Online: one close per unit, sparse activity --------------------
    let mut per_unit_total = Duration::ZERO;
    let (_, online_peak) = memtrack::measure_peak(|| {
        let mut engine = regcube_stream::online::EngineConfig::new(
            schema.clone(),
            dataset.o_layer.clone(),
            dataset.m_layer.clone(),
        )
        .with_policy(policy.clone())
        .with_tilt(TiltSpec::new(vec![("unit", units.max(2)), ("epoch", 2)]).unwrap())
        .with_ticks_per_unit(ticks)
        .with_algorithm(Algorithm::MoCubing)
        .build()
        .expect("valid engine config");
        for u in 0..units {
            for t in (u * ticks) as i64..((u + 1) * ticks) as i64 {
                for (i, tuple) in dataset.tuples.iter().enumerate() {
                    if i % units != u {
                        continue; // only this unit's slice generates data
                    }
                    engine
                        .ingest(&RawRecord::new(tuple.ids.clone(), t, tuple.isb.predict(t)))
                        .expect("in-window record");
                }
            }
            let report = engine.close_unit().expect("unit closes");
            per_unit_total += report.recompute_time;
        }
    });
    let per_unit = per_unit_total / units as u32;

    // ---- Monolithic: one computation over the whole span ---------------
    let layers = CriticalLayers::new(&schema, dataset.o_layer.clone(), dataset.m_layer.clone())
        .expect("valid layers");
    let window_end = (units * ticks) as i64 - 1;
    let full_tuples: Vec<MTuple> = dataset
        .tuples
        .iter()
        .map(|t| {
            // The tuple's fit over the whole accumulated window: merge its
            // per-unit ISBs with Theorem 3.3 (equivalently, refit).
            let isbs: Vec<Isb> = (0..units)
                .map(|u| {
                    let s = (u * ticks) as i64;
                    let e = ((u + 1) * ticks) as i64 - 1;
                    Isb::new(s, e, t.isb.base(), t.isb.slope()).expect("window")
                })
                .collect();
            let merged = aggregate::merge_time(&isbs).expect("contiguous");
            debug_assert_eq!(merged.interval(), (0, window_end));
            MTuple::new(t.ids.clone(), merged)
        })
        .collect();
    let started = Instant::now();
    let full_result =
        mo_cubing::compute(&schema, &layers, &policy, &full_tuples).expect("valid workload");
    let full = started.elapsed();
    let _ = full_result;

    // ---- Engine incremental: merge only the newly generated slice ------
    // A warm engine holds all but the last `1/units` of the window's
    // tuples; `ingest_unit` with the same window folds the new slice in
    // via Theorem 3.2 instead of recomputing any cuboid.
    let split = full_tuples.len() - full_tuples.len() / units;
    let (head, tail) = full_tuples.split_at(split.min(full_tuples.len() - 1));
    let mut engine = MoCubingEngine::new(schema.clone(), layers.clone(), policy.clone())
        .expect("valid workload");
    engine.ingest_unit(head).expect("warm-up batch");
    let started = Instant::now();
    let delta = engine.ingest_unit(tail).expect("incremental batch");
    let engine_merge = started.elapsed();
    assert!(!delta.opened_unit, "same window must merge incrementally");

    IncrementalReport {
        units,
        per_unit,
        full,
        engine_merge,
        online_peak,
        speedup: full.as_secs_f64() / per_unit.as_secs_f64().max(1e-9),
        merge_speedup: full.as_secs_f64() / engine_merge.as_secs_f64().max(1e-9),
    }
}

/// Prints the comparison and returns it (for JSON export).
pub fn print(r: &IncrementalReport) -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "Incremental vs monolithic recomputation ({} units)",
            r.units
        ),
        &["mode", "time (s)", "peak (MB)"],
    );
    t.push_row(vec![
        "online, per closed unit (mean)".into(),
        fmt_secs(r.per_unit),
        fmt_mb(r.online_peak),
    ]);
    t.push_row(vec![
        "monolithic, full window".into(),
        fmt_secs(r.full),
        "-".into(),
    ]);
    t.push_row(vec![
        "engine merge, newest slice only".into(),
        fmt_secs(r.engine_merge),
        "-".into(),
    ]);
    t.print();
    println!(
        "per-unit recomputation is {:.2}x {} than the monolithic pass",
        r.speedup.max(1.0 / r.speedup),
        if r.speedup >= 1.0 { "faster" } else { "slower" }
    );
    println!(
        "same-window engine merge of the newest slice is {:.2}x {} than \
         the monolithic pass",
        r.merge_speedup.max(1.0 / r.merge_speedup),
        if r.merge_speedup >= 1.0 {
            "faster"
        } else {
            "slower"
        }
    );
    println!();
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_replay_completes() {
        let r = run(true);
        assert_eq!(r.units, 4);
        assert!(r.per_unit > Duration::ZERO);
        assert!(r.full > Duration::ZERO);
        // `online_peak` is allocator-derived and depends on concurrent
        // test activity; the speedup ratios are the claims under test.
        assert!(r.speedup.is_finite() && r.speedup > 0.0);
        assert!(r.merge_speedup.is_finite() && r.merge_speedup > 0.0);
    }
}
