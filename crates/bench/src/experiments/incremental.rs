//! **Section 5, closing remark**: "in stream data applications, it is
//! likely that one just need to incrementally compute the newly generated
//! stream data. In this case, the computation time should be
//! substantially shorter" — we measure one online per-unit recomputation
//! against a monolithic recomputation over the accumulated window.

use crate::memtrack;
use crate::report::{fmt_mb, fmt_secs, Table};
use regcube_core::engine::{CubingEngine, MoCubingEngine, PopularPathEngine};
use regcube_core::result::Algorithm;
use regcube_core::{mo_cubing, CriticalLayers, ExceptionPolicy, MTuple};
use regcube_datagen::{Dataset, DatasetSpec};
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::{aggregate, Isb};
use regcube_stream::RawRecord;
use regcube_tilt::TiltSpec;
use std::time::{Duration, Instant};

/// The measured comparison.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalReport {
    /// Units replayed.
    pub units: usize,
    /// Mean per-unit online recomputation time.
    pub per_unit: Duration,
    /// One full computation over the whole accumulated window.
    pub full: Duration,
    /// Merging the last `1/units` slice into a warm [`MoCubingEngine`]
    /// holding the rest of the window (the trait's same-window
    /// incremental path).
    pub engine_merge: Duration,
    /// Allocator peak of the online engine over the replay (bytes).
    pub online_peak: usize,
    /// Speed ratio `full / per_unit`.
    pub speedup: f64,
    /// Speed ratio `full / engine_merge`.
    pub merge_speedup: f64,
    /// Frontier-dirty drilling on a quiet stream (stable exception
    /// frontier, small disjoint updates).
    pub quiet: DrillPhaseReport,
    /// Frontier-dirty drilling on a churny stream (the exception
    /// frontier flips every batch).
    pub churny: DrillPhaseReport,
}

/// One phase of the popular-path drill-replay comparison: the same
/// same-window batch stream through the frontier-dirty incremental
/// engine and the full step-3 replay baseline
/// (`PopularPathEngine::with_full_drill_replay`).
#[derive(Debug, Clone, Copy)]
pub struct DrillPhaseReport {
    /// Same-window delta batches ingested (after the unit-opening one).
    pub batches: usize,
    /// Wall time of the incremental engine over the phase.
    pub incremental: Duration,
    /// Wall time of the full-replay baseline over the phase.
    pub replay: Duration,
    /// Off-path cuboids the incremental engine re-aggregated/retracted.
    pub replayed_cuboids: u64,
    /// Off-path cuboids the incremental engine reused verbatim.
    pub skipped_cuboids: u64,
    /// Incremental throughput, batches ("units") per second.
    pub units_per_sec: f64,
    /// Baseline throughput, batches per second.
    pub replay_units_per_sec: f64,
    /// Speed ratio `replay / incremental`.
    pub speedup: f64,
}

/// Replays `units` m-layer time units of a synthetic stream through the
/// online engine, then computes the same data monolithically.
///
/// Stream activity is *sparse per unit*: each unit only a `1/units` slice
/// of the streams produces new data (round-robin), which is the situation
/// the paper's remark addresses — the incremental pass only touches the
/// newly generated data while the monolithic pass cubes everything.
pub fn run(quick: bool) -> IncrementalReport {
    let (tuples_n, units, ticks) = if quick { (500, 4, 8) } else { (20_000, 8, 16) };
    let spec = DatasetSpec::new(2, 2, 8, tuples_n)
        .unwrap()
        .with_series_len(ticks * units);
    let dataset = Dataset::generate(spec).expect("valid spec");
    let schema = dataset.schema.clone();
    let policy = ExceptionPolicy::slope_threshold(0.5);

    // ---- Online: one close per unit, sparse activity --------------------
    let mut per_unit_total = Duration::ZERO;
    let (_, online_peak) = memtrack::measure_peak(|| {
        let mut engine = regcube_stream::online::EngineConfig::new(
            schema.clone(),
            dataset.o_layer.clone(),
            dataset.m_layer.clone(),
        )
        .with_policy(policy.clone())
        .with_tilt(TiltSpec::new(vec![("unit", units.max(2)), ("epoch", 2)]).unwrap())
        .with_ticks_per_unit(ticks)
        .with_algorithm(Algorithm::MoCubing)
        .build()
        .expect("valid engine config");
        for u in 0..units {
            for t in (u * ticks) as i64..((u + 1) * ticks) as i64 {
                for (i, tuple) in dataset.tuples.iter().enumerate() {
                    if i % units != u {
                        continue; // only this unit's slice generates data
                    }
                    engine
                        .ingest(&RawRecord::new(tuple.ids.clone(), t, tuple.isb.predict(t)))
                        .expect("in-window record");
                }
            }
            let report = engine.close_unit().expect("unit closes");
            per_unit_total += report.recompute_time;
        }
    });
    let per_unit = per_unit_total / units as u32;

    // ---- Monolithic: one computation over the whole span ---------------
    let layers = CriticalLayers::new(&schema, dataset.o_layer.clone(), dataset.m_layer.clone())
        .expect("valid layers");
    let window_end = (units * ticks) as i64 - 1;
    let full_tuples: Vec<MTuple> = dataset
        .tuples
        .iter()
        .map(|t| {
            // The tuple's fit over the whole accumulated window: merge its
            // per-unit ISBs with Theorem 3.3 (equivalently, refit).
            let isbs: Vec<Isb> = (0..units)
                .map(|u| {
                    let s = (u * ticks) as i64;
                    let e = ((u + 1) * ticks) as i64 - 1;
                    Isb::new(s, e, t.isb.base(), t.isb.slope()).expect("window")
                })
                .collect();
            let merged = aggregate::merge_time(&isbs).expect("contiguous");
            debug_assert_eq!(merged.interval(), (0, window_end));
            MTuple::new(t.ids.clone(), merged)
        })
        .collect();
    let started = Instant::now();
    let full_result =
        mo_cubing::compute(&schema, &layers, &policy, &full_tuples).expect("valid workload");
    let full = started.elapsed();
    let _ = full_result;

    // ---- Engine incremental: merge only the newly generated slice ------
    // A warm engine holds all but the last `1/units` of the window's
    // tuples; `ingest_unit` with the same window folds the new slice in
    // via Theorem 3.2 instead of recomputing any cuboid.
    let split = full_tuples.len() - full_tuples.len() / units;
    let (head, tail) = full_tuples.split_at(split.min(full_tuples.len() - 1));
    let mut engine = MoCubingEngine::new(schema.clone(), layers.clone(), policy.clone())
        .expect("valid workload");
    engine.ingest_unit(head).expect("warm-up batch");
    let started = Instant::now();
    let delta = engine.ingest_unit(tail).expect("incremental batch");
    let engine_merge = started.elapsed();
    assert!(!delta.opened_unit, "same window must merge incrementally");

    let (quiet, churny) = run_drill_phases(quick);

    IncrementalReport {
        units,
        per_unit,
        full,
        engine_merge,
        online_peak,
        speedup: full.as_secs_f64() / per_unit.as_secs_f64().max(1e-9),
        merge_speedup: full.as_secs_f64() / engine_merge.as_secs_f64().max(1e-9),
        quiet,
        churny,
    }
}

/// Window shared by every batch of the drill phases (one open unit —
/// the frontier-dirty replay is a same-window optimization).
const DRILL_WINDOW: (i64, i64) = (0, 15);

/// The structure under the drill phases: 3 dimensions, 3 levels,
/// fanout 4 — a 64-cuboid lattice whose default popular path covers 10
/// cuboids, leaving 54 off-path cuboids for step 3.
fn drill_setup() -> (CubeSchema, CriticalLayers, ExceptionPolicy) {
    let schema = CubeSchema::synthetic(3, 3, 4).expect("static spec");
    let layers = CriticalLayers::new(
        &schema,
        CuboidSpec::new(vec![0, 0, 0]),
        CuboidSpec::new(vec![3, 3, 3]),
    )
    .expect("static layers");
    (schema, layers, ExceptionPolicy::slope_threshold(0.5))
}

fn drill_tuple(ids: [u32; 3], slope: f64) -> MTuple {
    MTuple::new(
        ids.to_vec(),
        Isb::new(DRILL_WINDOW.0, DRILL_WINDOW.1, 1.0, slope).expect("static window"),
    )
}

/// Deterministic quiet-stream ids: every coordinate outside the level-1
/// subtree 0 of its dimension (ids ≥ 16 under fanout 4 / depth 3), so
/// quiet updates never project onto the hot chain's frontier cells.
/// A splitmix-style hash spreads the streams over the 48³ cell space
/// (a plain linear recurrence would fold every dimension with period
/// 48 and collapse the m-layer to 48 cells).
fn quiet_ids(i: usize) -> [u32; 3] {
    let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    [
        16 + (h % 48) as u32,
        16 + ((h >> 16) % 48) as u32,
        16 + ((h >> 32) % 48) as u32,
    ]
}

/// The persistent hot streams: confined to subtree 0 of every
/// dimension, so their exception chains stay disjoint from the quiet
/// updates at every lattice depth except the apex.
const HOT: [[u32; 3]; 4] = [[0, 1, 2], [5, 4, 3], [10, 8, 6], [15, 12, 9]];

/// Ingests `batches` into both engines, timing each, and returns the
/// phase report (stats are diffed around the phase, so the
/// unit-opening drill is excluded from the replay counters).
fn time_phase(label: &str, open: &[MTuple], batches: &[Vec<MTuple>]) -> DrillPhaseReport {
    let (schema, layers, policy) = drill_setup();
    let mut incremental =
        PopularPathEngine::new(schema.clone(), layers.clone(), policy.clone(), None)
            .expect("valid engine");
    let mut replay = PopularPathEngine::new(schema, layers, policy, None)
        .expect("valid engine")
        .with_full_drill_replay();

    incremental.ingest_unit(open).expect("open unit");
    replay.ingest_unit(open).expect("open unit");
    let replayed0 = incremental.stats().drill_replayed_cuboids;
    let skipped0 = incremental.stats().drill_skipped_cuboids;

    let started = Instant::now();
    for batch in batches {
        incremental.ingest_unit(batch).expect("same-window batch");
    }
    let inc_elapsed = started.elapsed();
    let started = Instant::now();
    for batch in batches {
        replay.ingest_unit(batch).expect("same-window batch");
    }
    let rep_elapsed = started.elapsed();

    // The two modes must agree exactly — a cheap sanity net under the
    // benchmark itself (the real pinning lives in the contract tests).
    assert_eq!(
        incremental.result().total_exception_cells(),
        replay.result().total_exception_cells(),
        "{label}: incremental and replay cubes diverged"
    );

    let n = batches.len();
    DrillPhaseReport {
        batches: n,
        incremental: inc_elapsed,
        replay: rep_elapsed,
        replayed_cuboids: incremental.stats().drill_replayed_cuboids - replayed0,
        skipped_cuboids: incremental.stats().drill_skipped_cuboids - skipped0,
        units_per_sec: n as f64 / inc_elapsed.as_secs_f64().max(1e-9),
        replay_units_per_sec: n as f64 / rep_elapsed.as_secs_f64().max(1e-9),
        speedup: rep_elapsed.as_secs_f64() / inc_elapsed.as_secs_f64().max(1e-9),
    }
}

/// The drill-replay comparison: a **quiet** phase (persistent hot
/// chains, small updates disjoint from them — the frontier never
/// changes, so the incremental engine reuses nearly all of step 3) and
/// a **churny** phase (the hot set flips on and off every batch — the
/// frontier changes everywhere, so both modes do comparable work).
pub fn run_drill_phases(quick: bool) -> (DrillPhaseReport, DrillPhaseReport) {
    let (n, batches) = if quick { (1_500, 16) } else { (10_000, 48) };

    // Unit-opening batch: balanced tiny slopes on the quiet field plus
    // the persistent hot streams.
    let mut open: Vec<MTuple> = (0..n)
        .map(|i| drill_tuple(quiet_ids(i), if i % 2 == 0 { 0.001 } else { -0.001 }))
        .collect();
    for ids in HOT {
        open.push(drill_tuple(ids, 0.8));
    }

    // Quiet phase: each batch updates a rotating 1/32 slice of the
    // quiet field with balanced tiny slopes.
    let quiet_batches: Vec<Vec<MTuple>> = (0..batches)
        .map(|b| {
            (0..n)
                .filter(|i| i % 32 == b % 32)
                .map(|i| drill_tuple(quiet_ids(i), if i % 64 < 32 { 0.001 } else { -0.001 }))
                .collect()
        })
        .collect();
    let quiet = time_phase("quiet", &open, &quiet_batches);

    // Churny phase: every batch flips the hot streams' aggregate
    // between 0 (cleared) and 0.8 (exceptional), so the whole frontier
    // appears or retracts each time.
    let churny_batches: Vec<Vec<MTuple>> = (0..batches)
        .map(|b| {
            let slope = if b % 2 == 0 { -0.8 } else { 0.8 };
            HOT.iter().map(|&ids| drill_tuple(ids, slope)).collect()
        })
        .collect();
    let churny = time_phase("churny", &open, &churny_batches);

    (quiet, churny)
}

/// Prints the comparison and returns it (for JSON export).
pub fn print(r: &IncrementalReport) -> Vec<Table> {
    let mut t = Table::new(
        format!(
            "Incremental vs monolithic recomputation ({} units)",
            r.units
        ),
        &["mode", "time (s)", "peak (MB)"],
    );
    t.push_row(vec![
        "online, per closed unit (mean)".into(),
        fmt_secs(r.per_unit),
        fmt_mb(r.online_peak),
    ]);
    t.push_row(vec![
        "monolithic, full window".into(),
        fmt_secs(r.full),
        "-".into(),
    ]);
    t.push_row(vec![
        "engine merge, newest slice only".into(),
        fmt_secs(r.engine_merge),
        "-".into(),
    ]);
    t.print();
    println!(
        "per-unit recomputation is {:.2}x {} than the monolithic pass",
        r.speedup.max(1.0 / r.speedup),
        if r.speedup >= 1.0 { "faster" } else { "slower" }
    );
    println!(
        "same-window engine merge of the newest slice is {:.2}x {} than \
         the monolithic pass",
        r.merge_speedup.max(1.0 / r.merge_speedup),
        if r.merge_speedup >= 1.0 {
            "faster"
        } else {
            "slower"
        }
    );
    println!();

    let mut drill = Table::new(
        format!(
            "Frontier-dirty drill replay vs full step-3 replay ({} batches/phase)",
            r.quiet.batches
        ),
        &[
            "phase", "mode", "time (s)", "units/s", "replayed", "skipped",
        ],
    );
    for (phase, p) in [("quiet", &r.quiet), ("churny", &r.churny)] {
        drill.push_row(vec![
            phase.into(),
            "frontier-dirty".into(),
            fmt_secs(p.incremental),
            format!("{:.1}", p.units_per_sec),
            p.replayed_cuboids.to_string(),
            p.skipped_cuboids.to_string(),
        ]);
        drill.push_row(vec![
            phase.into(),
            "full replay".into(),
            fmt_secs(p.replay),
            format!("{:.1}", p.replay_units_per_sec),
            "-".into(),
            "-".into(),
        ]);
    }
    drill.print();
    println!(
        "quiet-stream drilling is {:.2}x faster than the full step-3 replay \
         ({} cuboids reused verbatim, {} replayed)",
        r.quiet.speedup, r.quiet.skipped_cuboids, r.quiet.replayed_cuboids
    );
    println!(
        "churny-stream drilling is {:.2}x the full replay (frontier churn \
         forces {} re-aggregations)",
        r.churny.speedup, r.churny.replayed_cuboids
    );
    println!();
    vec![t, drill]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_replay_completes() {
        let r = run(true);
        assert_eq!(r.units, 4);
        assert!(r.per_unit > Duration::ZERO);
        assert!(r.full > Duration::ZERO);
        // `online_peak` is allocator-derived and depends on concurrent
        // test activity; the speedup ratios are the claims under test.
        assert!(r.speedup.is_finite() && r.speedup > 0.0);
        assert!(r.merge_speedup.is_finite() && r.merge_speedup > 0.0);
    }

    #[test]
    fn quiet_stream_drilling_reuses_the_frontier() {
        let (quiet, churny) = run_drill_phases(true);
        // The quiet phase's exception frontier never changes, so almost
        // everything is reused: the replayed count stays tiny (only the
        // apex's immediate off-path children re-drill, their qualifying
        // region being the whole cube) while skips dominate.
        assert!(
            quiet.skipped_cuboids > quiet.replayed_cuboids * 8,
            "quiet phase must mostly skip: {} skipped vs {} replayed",
            quiet.skipped_cuboids,
            quiet.replayed_cuboids
        );
        // Wall-clock ratios flake under a loaded shared test runner, so
        // the unit test only sanity-checks direction; the real ≥3x bar
        // (typically ~7x) is enforced by the release-mode `pp_baseline`
        // CI gate on the committed quiet-speedup baseline.
        assert!(
            quiet.speedup > 1.5,
            "quiet-stream speedup {:.2}x lost even the loose margin",
            quiet.speedup
        );
        // The churny phase replays much more of the lattice per batch.
        assert!(churny.replayed_cuboids > quiet.replayed_cuboids);
    }
}
