//! **Figure 4 / Example 3**: the tilt time frame's compression — 71
//! registered units instead of `366 · 24 · 4 = 35,136`, "a saving of
//! about 495 times", plus a live memory comparison of a tilt frame vs a
//! flat quarter-resolution register over one year of ISB measures.

use crate::memtrack;
use crate::report::{fmt_count, fmt_mb, Table};
use regcube_regress::{Isb, TimeSeries};
use regcube_tilt::{TiltFrame, TiltSpec};

/// The measured comparison.
#[derive(Debug, Clone, Copy)]
pub struct TiltReport {
    /// Slots a flat year-of-quarters register needs.
    pub flat_slots: u64,
    /// Slots the Figure 4 tilt frame holds at capacity.
    pub tilt_slots: usize,
    /// The slot-count saving ratio (~495).
    pub ratio: f64,
    /// Allocator peak while maintaining the flat register (bytes).
    pub flat_peak: usize,
    /// Allocator peak while maintaining the tilt frame (bytes).
    pub tilt_peak: usize,
    /// Quarters actually replayed in this run.
    pub replayed_quarters: u64,
    /// Slots the frame retained after the replay (deterministic).
    pub tilt_retained: usize,
}

fn quarter_isb(u: i64) -> Isb {
    // 15 minute ticks per quarter.
    let start = u * 15;
    let series =
        TimeSeries::from_fn(start, start + 14, |t| 0.5 + 0.001 * t as f64).expect("non-empty");
    Isb::fit(&series).expect("valid window")
}

/// Replays a year of quarters into both registers and measures.
pub fn run(quick: bool) -> TiltReport {
    let quarters: i64 = if quick { 24 * 4 * 7 } else { 366 * 24 * 4 };
    let spec = TiltSpec::paper_figure4();
    let flat_slots = 35_136u64;

    let (_, flat_peak) = memtrack::measure_peak(|| {
        let mut flat: Vec<Isb> = Vec::new();
        for u in 0..quarters {
            flat.push(quarter_isb(u));
        }
        flat.len()
    });

    let (tilt_retained, tilt_peak) = memtrack::measure_peak(|| {
        let mut frame: TiltFrame<Isb> = TiltFrame::new(spec.clone());
        for u in 0..quarters {
            frame.push(quarter_isb(u)).expect("contiguous pushes");
        }
        frame.retained_slots()
    });

    TiltReport {
        flat_slots,
        tilt_slots: spec.capacity_slots(),
        ratio: spec.compression_ratio(flat_slots),
        flat_peak,
        tilt_peak,
        replayed_quarters: quarters as u64,
        tilt_retained,
    }
}

/// Prints the comparison table and returns it (for JSON export).
pub fn print(r: &TiltReport) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 4 / Example 3: tilt time frame vs flat registration (1 year)",
        &["register", "slots", "measured peak (MB)"],
    );
    t.push_row(vec![
        "flat quarters".into(),
        fmt_count(r.flat_slots),
        fmt_mb(r.flat_peak),
    ]);
    t.push_row(vec![
        "tilt frame (4 qtr + 24 h + 31 d + 12 mo)".into(),
        fmt_count(r.tilt_slots as u64),
        fmt_mb(r.tilt_peak),
    ]);
    t.print();
    println!(
        "slot saving ratio: {:.1}x (paper: \"a saving of about 495 times\")",
        r.ratio
    );
    println!();
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example3_numbers() {
        let r = run(true);
        assert_eq!(r.flat_slots, 35_136);
        assert_eq!(r.tilt_slots, 71);
        assert!((r.ratio - 494.87).abs() < 0.01);
        // Allocator peaks are racy under parallel tests; the slot counts
        // are the deterministic claim: a week of quarters (672) fits in
        // far fewer retained slots than a flat register would need.
        assert_eq!(r.replayed_quarters, 24 * 4 * 7);
        assert!(r.tilt_retained <= 71, "retained {}", r.tilt_retained);
        assert!(r.tilt_retained < r.replayed_quarters as usize / 5);
    }
}
