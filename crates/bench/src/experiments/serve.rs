//! **Serve**: the multi-tenant serving layer under skewed load.
//!
//! Not a paper figure — this measures the serving front-end
//! (`regcube_serve`) the ROADMAP's "millions of users" north star
//! needs: many tenant cubes multiplexed over two shared worker pools,
//! dashboard readers hammering lock-free published snapshots while
//! ingestion runs, and bounded-queue backpressure.
//!
//! Two phases:
//!
//! * **load** — `T` tenants with harmonically skewed traffic (tenant 0
//!   heaviest) ingest through the server while reader threads poll
//!   snapshots and dashboard summaries off the double-buffered cells.
//!   Reports ingest throughput and the readers' query latency
//!   distribution (p50/p99). Alarm totals are deterministic — the
//!   skew includes a ramping hot tenant — so they double as a
//!   correctness counter for the baseline gate.
//! * **backpressure probe** — one tenant with a tiny queue driven past
//!   capacity without pumping: the accept/reject split is exact and
//!   deterministic, pinning the typed-`Overloaded` contract in the
//!   committed baseline.

use crate::report::{fmt_count, Table};
use regcube_core::ExceptionPolicy;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_serve::{DashboardSummary, ServeConfig, ServeError, Server, TenantId, TenantReader};
use regcube_stream::{EngineConfig, RawRecord};
use regcube_tilt::TiltSpec;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Ticks per unit for every tenant.
const TPU: usize = 4;
/// Heaviest tenant's records per tick; tenant `t` gets `HEAVY / (t+1)`,
/// floored at 1 — a harmonic skew.
const HEAVY: u32 = 64;
/// Reader threads polling dashboards during the load phase.
const READERS: usize = 2;

/// One measured phase.
#[derive(Debug, Clone)]
pub struct Point {
    /// Phase label.
    pub label: String,
    /// Tenants hosted.
    pub tenants: usize,
    /// Records accepted by the server.
    pub records: u64,
    /// Units closed per tenant.
    pub units: i64,
    /// Wall-clock of the ingest+close drive loop.
    pub ingest: Duration,
    /// Snapshot/summary queries the readers completed during ingest.
    pub queries: u64,
    /// Median query latency in microseconds.
    pub query_p50_us: f64,
    /// 99th-percentile query latency in microseconds.
    pub query_p99_us: f64,
    /// Alarms raised across all tenants and units (deterministic).
    pub alarms: u64,
    /// Typed `Overloaded` rejections (deterministic in the probe).
    pub rejections: u64,
}

fn tenant_config() -> EngineConfig {
    let schema = CubeSchema::synthetic(2, 2, 3).expect("valid schema");
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![1, 1]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(1.5))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).expect("valid spec"))
    .with_ticks_per_unit(TPU)
}

/// Records tenant `t` produces at tick `tick`: harmonic weight, cells
/// cycling through a 3x3 grid, and a deterministic hot ramp on the
/// heaviest tenant in the last unit (so alarms genuinely fire).
fn tenant_records(t: usize, tick: i64, last_unit: i64) -> Vec<RawRecord> {
    let weight = (HEAVY / (t as u32 + 1)).max(1);
    let unit = tick / TPU as i64;
    (0..weight)
        .map(|c| {
            let hot = t == 0 && unit == last_unit;
            let value = if hot {
                3.0 * (tick % TPU as i64) as f64
            } else {
                1.0 + 0.1 * f64::from(c % 3)
            };
            RawRecord::new(vec![c % 3, (c / 3) % 3], tick, value)
        })
        .collect()
}

/// The load phase: drive `tenants` tenants for `units` units while
/// `READERS` threads poll dashboards off the published snapshots.
fn run_load(tenants: usize, units: i64) -> Point {
    let server = Arc::new(Server::new(
        ServeConfig::new()
            .with_max_tenants(tenants)
            .with_queue_capacity((HEAVY as usize) * TPU + 64),
    ));
    let ids: Vec<TenantId> = (0..tenants)
        .map(|t| TenantId::from(format!("tenant-{t:05}")))
        .collect();
    for id in &ids {
        server
            .create_tenant(id.clone(), tenant_config())
            .expect("admission");
    }
    let readers: Vec<TenantReader> = ids
        .iter()
        .map(|id| server.reader(id).expect("reader"))
        .collect();

    // Dashboard readers: round-robin over tenants, timing each
    // snapshot + summary + alarm inspection. Entirely lock-free reads.
    let stop = Arc::new(AtomicBool::new(false));
    let poller_handles: Vec<_> = (0..READERS)
        .map(|r| {
            let readers = readers.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut latencies: Vec<Duration> = Vec::new();
                let mut i = r;
                let mut last_epochs = vec![0u64; readers.len()];
                while !stop.load(Ordering::Relaxed) {
                    let reader = &readers[i % readers.len()];
                    let started = Instant::now();
                    let snap = reader.snapshot();
                    let summary = DashboardSummary::of(reader.id().clone(), &snap);
                    latencies.push(started.elapsed());
                    assert!(
                        summary.epoch >= last_epochs[i % readers.len()],
                        "published epochs must be monotone"
                    );
                    last_epochs[i % readers.len()] = summary.epoch;
                    i += 1;
                }
                latencies
            })
        })
        .collect();

    // The drive loop: skewed ingest, pump per tick, close per unit.
    let started = Instant::now();
    let mut records = 0u64;
    let mut alarms = 0u64;
    for unit in 0..units {
        for tick in unit * TPU as i64..(unit + 1) * TPU as i64 {
            for (t, id) in ids.iter().enumerate() {
                for record in tenant_records(t, tick, units - 1) {
                    server.ingest(id, &record).expect("sized queue");
                    records += 1;
                }
            }
            for pump in server.pump() {
                assert!(pump.errors.is_empty(), "{:?}", pump.errors);
                alarms += pump
                    .reports
                    .iter()
                    .map(|r| r.alarms.len() as u64)
                    .sum::<u64>();
            }
        }
        for id in &ids {
            let pump = server.close_unit(id).expect("close");
            assert!(pump.errors.is_empty(), "{:?}", pump.errors);
            alarms += pump
                .reports
                .iter()
                .map(|r| r.alarms.len() as u64)
                .sum::<u64>();
        }
    }
    let ingest = started.elapsed();
    stop.store(true, Ordering::Relaxed);

    let mut latencies: Vec<Duration> = Vec::new();
    for handle in poller_handles {
        latencies.extend(handle.join().expect("reader thread"));
    }
    latencies.sort_unstable();
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx].as_secs_f64() * 1e6
    };

    Point {
        label: format!("{tenants} skewed tenants"),
        tenants,
        records,
        units,
        ingest,
        queries: latencies.len() as u64,
        query_p50_us: percentile(0.50),
        query_p99_us: percentile(0.99),
        alarms,
        rejections: 0,
    }
}

/// The backpressure probe: a tiny queue driven past capacity without
/// pumping — the accept/reject split is exact.
fn run_probe() -> Point {
    let capacity = 8usize;
    let sent = 20u64;
    let server = Server::new(ServeConfig::new().with_queue_capacity(capacity));
    let id = TenantId::from("probe");
    server
        .create_tenant(id.clone(), tenant_config())
        .expect("admission");
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let started = Instant::now();
    for i in 0..sent {
        let record = RawRecord::new(vec![0, 0], (i % TPU as u64) as i64, 1.0);
        match server.ingest(&id, &record) {
            Ok(()) => accepted += 1,
            Err(ServeError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected {e}"),
        }
    }
    let pump = server.close_unit(&id).expect("drain");
    assert!(pump.errors.is_empty());
    let stats = server.tenant_stats(&id).expect("stats");
    assert_eq!(stats.overload_rejections, rejected);
    Point {
        label: format!("backpressure probe (queue {capacity})"),
        tenants: 1,
        records: accepted,
        units: 1,
        ingest: started.elapsed(),
        queries: 0,
        query_p50_us: 0.0,
        query_p99_us: 0.0,
        alarms: 0,
        rejections: rejected,
    }
}

/// Runs both phases. `quick` shrinks the fleet for smoke runs; the
/// full mode drives thousands of tenants.
pub fn run(quick: bool) -> Vec<Point> {
    let (tenants, units) = if quick { (48, 4i64) } else { (2000, 6) };
    vec![run_load(tenants, units), run_probe()]
}

/// Prints the phases and returns the tables (for JSON export).
pub fn print(points: &[Point]) -> Vec<Table> {
    let mut t = Table::new(
        "Serve: multi-tenant serving layer under skewed load",
        &[
            "phase",
            "tenants",
            "records",
            "krec/s",
            "queries",
            "q p50 (us)",
            "q p99 (us)",
            "alarms",
            "rejections",
        ],
    );
    for p in points {
        let krps = p.records as f64 / p.ingest.as_secs_f64().max(1e-9) / 1e3;
        t.push_row(vec![
            p.label.clone(),
            fmt_count(p.tenants as u64),
            fmt_count(p.records),
            format!("{krps:.0}"),
            fmt_count(p.queries),
            format!("{:.1}", p.query_p50_us),
            format!("{:.1}", p.query_p99_us),
            fmt_count(p.alarms),
            fmt_count(p.rejections),
        ]);
    }
    t.print();
    if let Some(load) = points.first() {
        println!(
            "{} dashboard queries ran lock-free against published snapshots while \
             {} records ingested across {} tenants",
            fmt_count(load.queries),
            fmt_count(load.records),
            fmt_count(load.tenants as u64)
        );
    }
    println!();
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_probe_phases_hold_their_contracts() {
        let points = run(true);
        assert_eq!(points.len(), 2);
        let (load, probe) = (&points[0], &points[1]);
        assert_eq!(load.tenants, 48);
        assert!(load.alarms > 0, "the hot ramp must alarm");
        assert_eq!(load.rejections, 0, "the load phase sizes its queues");
        assert!(load.queries > 0, "readers must observe the run");
        // The probe's accept/reject split is exact.
        assert_eq!(probe.records, 8);
        assert_eq!(probe.rejections, 12);
    }

    #[test]
    fn load_records_match_the_skew_formula() {
        let points = run(true);
        let load = &points[0];
        let per_tick: u64 = (0..load.tenants)
            .map(|t| u64::from((HEAVY / (t as u32 + 1)).max(1)))
            .sum();
        assert_eq!(load.records, per_tick * TPU as u64 * load.units as u64);
    }
}
