//! One module per figure of the paper's evaluation, plus shared plumbing.

pub mod alarm;
pub mod arena;
pub mod columnar;
pub mod dims;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod incremental;
pub mod lateness;
pub mod scaling;
pub mod serve;
pub mod tilt;

use crate::memtrack;
use regcube_core::engine::{CubingEngine, MoCubingEngine, PopularPathEngine};
use regcube_core::{mo_cubing, CriticalLayers, CubeResult, ExceptionPolicy, MTuple};
use regcube_datagen::{calibrate, Dataset};
use regcube_olap::CubeSchema;

/// A prepared workload: schema, layers and cubing input tuples.
pub struct Workload {
    /// Dataset name in the paper's convention.
    pub name: String,
    /// The schema.
    pub schema: CubeSchema,
    /// The critical layers.
    pub layers: CriticalLayers,
    /// m-layer input tuples.
    pub tuples: Vec<MTuple>,
}

impl Workload {
    /// Converts a generated dataset into a cubing workload.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let layers = CriticalLayers::new(
            &dataset.schema,
            dataset.o_layer.clone(),
            dataset.m_layer.clone(),
        )
        .expect("generator layers are valid");
        let tuples = dataset
            .tuples
            .iter()
            .map(|t| MTuple::new(t.ids.clone(), t.isb))
            .collect();
        Workload {
            name: dataset.spec.to_string(),
            schema: dataset.schema.clone(),
            layers,
            tuples,
        }
    }
}

/// The measurements of one `(algorithm, configuration)` cell of a figure.
#[derive(Debug, Clone, Copy)]
pub struct RunMeasurement {
    /// Wall-clock seconds of the cube computation.
    pub seconds: f64,
    /// Allocator peak delta in bytes while computing.
    pub alloc_peak: usize,
    /// Analytical peak bytes (live tables) from the run stats.
    pub analytical_peak: usize,
    /// Exception cells retained.
    pub exception_cells: u64,
    /// Cells computed.
    pub cells_computed: u64,
}

/// Ingests a workload as one unit into any [`CubingEngine`] under the
/// allocator meter — every figure goes through this trait-level seam, so
/// a new cubing backend is benchmarked by handing it in here.
pub fn run_engine<E: CubingEngine>(engine: &mut E, workload: &Workload) -> RunMeasurement {
    let (_, alloc_peak) = memtrack::measure_peak(|| {
        engine
            .ingest_unit(&workload.tuples)
            .expect("valid workload");
        // The engine retains working tables for incremental follow-ups;
        // batch figures measure exactly this one-unit ingestion.
    });
    to_measurement(engine.result(), alloc_peak)
}

/// Runs Algorithm 1 (an [`MoCubingEngine`]) under the allocator meter.
pub fn run_mo(workload: &Workload, policy: &ExceptionPolicy) -> RunMeasurement {
    let mut engine = MoCubingEngine::transient(
        workload.schema.clone(),
        workload.layers.clone(),
        policy.clone(),
    )
    .expect("valid workload");
    run_engine(&mut engine, workload)
}

/// Runs Algorithm 2 (a [`PopularPathEngine`], default path) under the
/// allocator meter.
pub fn run_pp(workload: &Workload, policy: &ExceptionPolicy) -> RunMeasurement {
    let mut engine = PopularPathEngine::new(
        workload.schema.clone(),
        workload.layers.clone(),
        policy.clone(),
        None,
    )
    .expect("valid workload");
    run_engine(&mut engine, workload)
}

fn to_measurement(result: &CubeResult, alloc_peak: usize) -> RunMeasurement {
    let s = result.stats();
    RunMeasurement {
        seconds: s.elapsed.as_secs_f64(),
        alloc_peak,
        analytical_peak: s.peak_bytes,
        exception_cells: s.exception_cells,
        cells_computed: s.cells_computed,
    }
}

/// Collects the |slope| scores of **every aggregated cell** between the
/// layers (inclusive of the critical layers) by running m/o-cubing with
/// an always-exceptional policy once. These scores calibrate the
/// exception-percentage axis of Figure 8 exactly as the paper defines it
/// ("the percentage of aggregated cells that belong to exception cells").
pub fn all_cell_scores(workload: &Workload) -> Vec<f64> {
    let result = mo_cubing::compute(
        &workload.schema,
        &workload.layers,
        &ExceptionPolicy::always(),
        &workload.tuples,
    )
    .expect("valid workload");
    let mut scores: Vec<f64> = Vec::with_capacity(result.stats().cells_computed as usize);
    scores.extend(result.m_table().values().map(|m| m.slope().abs()));
    scores.extend(result.o_table().values().map(|m| m.slope().abs()));
    scores.extend(result.iter_exceptions().map(|(_, _, m)| m.slope().abs()));
    scores
}

/// The threshold achieving a target exception rate over a workload.
pub fn threshold_for_rate(workload: &Workload, rate_percent: f64) -> f64 {
    let scores = all_cell_scores(workload);
    calibrate::threshold_for_rate(&scores, rate_percent / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_datagen::DatasetSpec;

    fn tiny_workload() -> Workload {
        let d = Dataset::generate(DatasetSpec::new(2, 2, 3, 300).unwrap()).unwrap();
        Workload::from_dataset(&d)
    }

    #[test]
    fn workload_conversion_keeps_counts() {
        let w = tiny_workload();
        assert!(!w.tuples.is_empty());
        assert_eq!(w.layers.m_layer().levels(), &[2, 2]);
        assert!(w.name.starts_with("D2L2C3"));
    }

    #[test]
    fn both_runners_produce_measurements() {
        let w = tiny_workload();
        let policy = ExceptionPolicy::slope_threshold(0.1);
        let mo = run_mo(&w, &policy);
        let pp = run_pp(&w, &policy);
        assert!(mo.seconds >= 0.0 && pp.seconds >= 0.0);
        // Allocator peaks are polluted by concurrent tests (shared global
        // counters); the analytical peaks are deterministic.
        assert!(mo.analytical_peak > 0);
        assert!(pp.analytical_peak > 0);
        assert!(mo.cells_computed >= w.tuples.len() as u64);
        // Footnote 7: popular-path retains a subset.
        assert!(pp.exception_cells <= mo.exception_cells);
    }

    #[test]
    fn calibration_brackets_the_rate() {
        let w = tiny_workload();
        let scores = all_cell_scores(&w);
        assert!(scores.len() > w.tuples.len());
        let t1 = threshold_for_rate(&w, 1.0);
        let t50 = threshold_for_rate(&w, 50.0);
        assert!(
            t1 >= t50,
            "1% threshold {t1} must exceed 50% threshold {t50}"
        );
        let achieved = calibrate::rate_at_threshold(&scores, t50);
        assert!((achieved - 0.5).abs() < 0.05, "achieved {achieved}");
    }
}
