//! **Scaling**: sharded-parallel cubing throughput. Theorem 3.2 makes
//! cube construction partitionable, so the units/sec of a per-unit
//! stream replay should climb with the shard count until the machine's
//! cores are saturated. This experiment replays the same multi-unit
//! stream through:
//!
//! * one sequential `MoCubingEngine` (the pre-sharding baseline),
//! * one `MoCubingEngine` with a worker pool on its **tier roll-up**
//!   (same-depth cuboids computed in parallel),
//! * a `ShardedEngine` at 1/2/4/8 shards (m-layer hash partitions cubed
//!   concurrently and merged).
//!
//! Every configuration must report the same exception count — the
//! speedup is free of semantic drift (the shard contract tests pin the
//! full cube equality; this experiment cross-checks while measuring).

use crate::report::{fmt_count, fmt_secs, Table};
use regcube_core::engine::CubingEngine;
use regcube_core::shard::ShardedEngine;
use regcube_core::{CriticalLayers, ExceptionPolicy, MTuple, MoCubingEngine, WorkerPool};
use regcube_datagen::{Dataset, DatasetSpec};
use regcube_regress::Isb;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard counts of the sweep.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct Point {
    /// Configuration label.
    pub config: String,
    /// Shards used (1 for the single-engine rows).
    pub shards: usize,
    /// Units replayed.
    pub units: usize,
    /// Throughput in m-layer units per second.
    pub units_per_sec: f64,
    /// Total replay wall-clock.
    pub total: Duration,
    /// Exception cells retained after the last unit (equality check).
    pub exception_cells: u64,
}

/// Replays `batches` (one per unit window) through `engine`.
fn measure(
    config: &str,
    shards: usize,
    batches: &[Vec<MTuple>],
    mut engine: Box<dyn CubingEngine>,
) -> Point {
    let started = Instant::now();
    for batch in batches {
        engine.ingest_unit(batch).expect("valid replay batch");
    }
    let total = started.elapsed();
    Point {
        config: config.to_string(),
        shards,
        units: batches.len(),
        units_per_sec: batches.len() as f64 / total.as_secs_f64().max(1e-9),
        total,
        exception_cells: engine.result().total_exception_cells(),
    }
}

/// Runs the sweep and returns one point per configuration.
pub fn run(quick: bool) -> Vec<Point> {
    let (tuples_n, units, fanout) = if quick { (1_500, 3, 4) } else { (50_000, 6, 8) };
    let ticks = 16usize;
    let spec = DatasetSpec::new(3, 3, fanout, tuples_n)
        .unwrap()
        .with_series_len(ticks * units);
    let dataset = Dataset::generate(spec).expect("valid spec");
    let schema = dataset.schema.clone();
    let layers = CriticalLayers::new(&schema, dataset.o_layer.clone(), dataset.m_layer.clone())
        .expect("valid layers");
    let policy = ExceptionPolicy::slope_threshold(0.5);

    // One batch per unit window: each unit re-fits every stream over its
    // own tick interval, which makes every replayed batch open a unit
    // (the full-recomputation path the parallel tiers/shards target).
    let unit_batches: Vec<Vec<MTuple>> = (0..units)
        .map(|u| {
            let start = (u * ticks) as i64;
            let end = start + ticks as i64 - 1;
            dataset
                .tuples
                .iter()
                .map(|t| {
                    let isb = Isb::new(start, end, t.isb.base(), t.isb.slope()).expect("window");
                    MTuple::new(t.ids.clone(), isb)
                })
                .collect()
        })
        .collect();

    let mut points = Vec::new();
    points.push(measure(
        "single engine, sequential",
        1,
        &unit_batches,
        Box::new(
            MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone())
                .expect("valid engine"),
        ),
    ));
    points.push(measure(
        "single engine, parallel tier roll-up",
        1,
        &unit_batches,
        Box::new(
            MoCubingEngine::transient(schema.clone(), layers.clone(), policy.clone())
                .expect("valid engine")
                .with_pool(Arc::new(WorkerPool::with_default_size())),
        ),
    ));
    for n in SHARD_COUNTS {
        points.push(measure(
            &format!("sharded, {n} shard{}", if n == 1 { "" } else { "s" }),
            n,
            &unit_batches,
            Box::new(
                ShardedEngine::mo_cubing(schema.clone(), layers.clone(), policy.clone(), n)
                    .expect("valid engine"),
            ),
        ));
    }
    points
}

/// Prints the sweep and returns it (for JSON export).
pub fn print(points: &[Point]) -> Vec<Table> {
    let baseline = points.first().map(|p| p.units_per_sec).unwrap_or(f64::NAN);
    let mut t = Table::new(
        format!(
            "Scaling: sharded cubing throughput ({} units replayed)",
            points.first().map(|p| p.units).unwrap_or(0)
        ),
        &[
            "configuration",
            "units/sec",
            "total (s)",
            "speedup",
            "exceptions",
        ],
    );
    for p in points {
        t.push_row(vec![
            p.config.clone(),
            format!("{:.2}", p.units_per_sec),
            fmt_secs(p.total),
            format!("{:.2}x", p.units_per_sec / baseline),
            fmt_count(p.exception_cells),
        ]);
    }
    t.print();
    if let Some(best) = points
        .iter()
        .max_by(|a, b| a.units_per_sec.total_cmp(&b.units_per_sec))
    {
        println!(
            "best configuration: {} at {:.2} units/sec ({:.2}x the sequential baseline)",
            best.config,
            best.units_per_sec,
            best.units_per_sec / baseline
        );
    }
    println!();
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_agrees_on_the_cube() {
        let points = run(true);
        assert_eq!(points.len(), 2 + SHARD_COUNTS.len());
        // Every configuration computes the same cube: identical retained
        // exception counts (throughput varies with the hardware, so only
        // the semantics are asserted here).
        let expected = points[0].exception_cells;
        for p in &points {
            assert_eq!(p.exception_cells, expected, "{}", p.config);
            assert!(p.units_per_sec > 0.0, "{}", p.config);
        }
    }
}
