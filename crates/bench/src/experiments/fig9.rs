//! **Figure 9**: processing time and memory usage vs m-layer size, cube
//! structure `D3L3C10`, exception rate fixed at 1%. The sizes are
//! "appropriate subsets of the same" large dataset.
//!
//! Paper shape to reproduce: both algorithms grow with size;
//! popular-path scales better in *time* (it computes only the path plus
//! drilled cells), while m/o-cubing uses less *memory* (the path tables
//! must be retained in full).

use super::{run_mo, run_pp, threshold_for_rate, Workload};
use crate::report::{fmt_count, fmt_mb, fmt_secs, Table};
use regcube_core::ExceptionPolicy;
use regcube_datagen::{Dataset, DatasetSpec};
use std::time::Duration;

/// The m-layer sizes (tuple counts) of the sweep, paper-style 32K..256K.
pub const SIZES: [usize; 4] = [32_000, 64_000, 128_000, 256_000];
/// Quick-mode sizes.
pub const QUICK_SIZES: [usize; 4] = [1_000, 2_000, 4_000, 8_000];

/// One measured sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Number of m-layer tuples.
    pub size: usize,
    /// m/o-cubing runtime (seconds).
    pub mo_secs: f64,
    /// popular-path runtime (seconds).
    pub pp_secs: f64,
    /// m/o-cubing allocator peak (bytes).
    pub mo_peak: usize,
    /// popular-path allocator peak (bytes).
    pub pp_peak: usize,
    /// m/o-cubing analytical peak (deterministic, for tests).
    pub mo_analytical: usize,
    /// popular-path analytical peak (deterministic, for tests).
    pub pp_analytical: usize,
}

/// Runs the sweep at a 1% exception rate.
pub fn run(quick: bool) -> Vec<Point> {
    let (spec, sizes) = if quick {
        (
            DatasetSpec::new(3, 3, 4, *QUICK_SIZES.last().unwrap()).unwrap(),
            &QUICK_SIZES,
        )
    } else {
        (
            DatasetSpec::new(3, 3, 10, *SIZES.last().unwrap()).unwrap(),
            &SIZES,
        )
    };
    let full = Dataset::generate(spec).expect("valid spec");
    sizes
        .iter()
        .map(|&size| {
            let workload = Workload::from_dataset(&full.subset(size));
            // 1% of *this subset's* cell population, as the paper fixes
            // the rate per experiment.
            let threshold = threshold_for_rate(&workload, 1.0);
            let policy = ExceptionPolicy::slope_threshold(threshold);
            let mo = run_mo(&workload, &policy);
            let pp = run_pp(&workload, &policy);
            Point {
                size,
                mo_secs: mo.seconds,
                pp_secs: pp.seconds,
                mo_peak: mo.alloc_peak,
                pp_peak: pp.alloc_peak,
                mo_analytical: mo.analytical_peak,
                pp_analytical: pp.analytical_peak,
            }
        })
        .collect()
}

/// Prints the two panels and returns them (for JSON export).
pub fn print(points: &[Point], structure: &str) -> Vec<Table> {
    let mut a = Table::new(
        format!("Figure 9a: processing time vs m-layer size ({structure}, 1% exceptions)"),
        &["tuples", "m/o-cubing (s)", "popular-path (s)"],
    );
    let mut b = Table::new(
        format!("Figure 9b: memory usage vs m-layer size ({structure}, 1% exceptions)"),
        &["tuples", "m/o-cubing (MB)", "popular-path (MB)"],
    );
    for p in points {
        a.push_row(vec![
            fmt_count(p.size as u64),
            fmt_secs(Duration::from_secs_f64(p.mo_secs)),
            fmt_secs(Duration::from_secs_f64(p.pp_secs)),
        ]);
        b.push_row(vec![
            fmt_count(p.size as u64),
            fmt_mb(p.mo_peak),
            fmt_mb(p.pp_peak),
        ]);
    }
    a.print();
    b.print();
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_grows_with_size() {
        let pts = run(true);
        assert_eq!(pts.len(), QUICK_SIZES.len());
        // Memory grows with the m-layer for both algorithms (the m-layer
        // itself is retained). Compare the deterministic analytical peaks:
        // allocator peaks are polluted by concurrently running tests.
        let (first, last) = (pts.first().unwrap(), pts.last().unwrap());
        assert!(last.mo_analytical > first.mo_analytical);
        assert!(last.pp_analytical > first.pp_analytical);
    }
}
