//! A counting global allocator: live bytes and a resettable high-water
//! mark. The only `unsafe` in the whole workspace (see DESIGN.md §6); it
//! delegates every operation to the system allocator and only adds atomic
//! counters.

// The one sanctioned exception to the workspace-wide `unsafe_code` deny:
// `GlobalAlloc` is an unsafe trait by definition.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// The counting allocator. Install with `#[global_allocator]` (done by
/// `regcube-bench`'s lib).
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let now = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let now = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Currently live heap bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live volume.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Serializes measurement sections: the counters are process-global, so
/// overlapping measurements (e.g. parallel unit tests) would pollute each
/// other's peaks.
static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` and returns its result together with the allocation peak
/// *delta*: how far above the starting live volume the heap grew while
/// `f` ran. This is the "memory usage" number the figure harness reports.
///
/// Measurements are mutually exclusive (a global lock), but allocations
/// from unrelated threads during `f` still count — run figure harnesses
/// single-threaded for clean numbers.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let before = live_bytes();
    reset_peak();
    let out = f();
    let delta = peak_bytes().saturating_sub(before);
    (out, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share process-global counters with every other test in
    // the binary, so they use spikes far larger than any concurrent
    // test's allocations and avoid tight upper bounds.
    const SPIKE: usize = 64 << 20; // 64 MiB

    #[test]
    fn peak_tracks_transient_allocations() {
        let (_, delta) = measure_peak(|| {
            let v: Vec<u8> = vec![7; SPIKE];
            drop(v);
            let w: Vec<u8> = vec![7; 1 << 10];
            w.len()
        });
        assert!(
            delta >= SPIKE / 2,
            "peak {delta} missed the {SPIKE}-byte spike"
        );
    }

    #[test]
    fn retained_allocations_count_as_live() {
        let before = live_bytes();
        let v: Vec<u8> = vec![1; SPIKE];
        assert!(live_bytes() >= before.saturating_add(SPIKE / 2));
        drop(v);
    }

    #[test]
    fn measure_peak_is_composable() {
        let ((), first) = measure_peak(|| {
            let _v: Vec<u8> = vec![0; SPIKE];
        });
        let ((), second) = measure_peak(|| {
            let _v: Vec<u8> = vec![0; 1 << 12];
        });
        assert!(first >= SPIKE / 2);
        assert!(
            second < SPIKE / 2,
            "second measurement ({second}) must not inherit the first peak"
        );
    }
}
