//! A counting global allocator: live bytes, a resettable high-water
//! mark, and allocator *call* counts (alloc / realloc / dealloc) — the
//! churn figure the arena backend exists to crush. The only `unsafe` in
//! the whole workspace (see DESIGN.md §6); it delegates every operation
//! to the system allocator and only adds atomic counters.

// The one sanctioned exception to the workspace-wide `unsafe_code` deny:
// `GlobalAlloc` is an unsafe trait by definition.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static REALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);
static DEALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

/// The counting allocator. Install with `#[global_allocator]` (done by
/// `regcube-bench`'s lib).
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            let now = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        DEALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            REALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let now = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(now, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Currently live heap bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live volume.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Allocator call counts: how many times each `GlobalAlloc` entry point
/// ran. Bytes measure *how much* memory moved; calls measure *how
/// often* the allocator was in the hot path — the churn metric the
/// arena backend optimizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocCalls {
    /// Successful `alloc` calls.
    pub alloc: usize,
    /// Successful `realloc` calls.
    pub realloc: usize,
    /// `dealloc` calls.
    pub dealloc: usize,
}

impl AllocCalls {
    /// Total allocator round trips (alloc + realloc + dealloc).
    pub fn total(&self) -> usize {
        self.alloc + self.realloc + self.dealloc
    }

    /// Counts since `earlier` (saturating component-wise difference).
    pub fn since(&self, earlier: &AllocCalls) -> AllocCalls {
        AllocCalls {
            alloc: self.alloc.saturating_sub(earlier.alloc),
            realloc: self.realloc.saturating_sub(earlier.realloc),
            dealloc: self.dealloc.saturating_sub(earlier.dealloc),
        }
    }
}

/// The process-lifetime allocator call counters.
pub fn alloc_calls() -> AllocCalls {
    AllocCalls {
        alloc: ALLOC_CALLS.load(Ordering::Relaxed),
        realloc: REALLOC_CALLS.load(Ordering::Relaxed),
        dealloc: DEALLOC_CALLS.load(Ordering::Relaxed),
    }
}

/// Serializes measurement sections: the counters are process-global, so
/// overlapping measurements (e.g. parallel unit tests) would pollute each
/// other's peaks.
static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` and returns its result together with the allocation peak
/// *delta*: how far above the starting live volume the heap grew while
/// `f` ran. This is the "memory usage" number the figure harness reports.
///
/// Measurements are mutually exclusive (a global lock), but allocations
/// from unrelated threads during `f` still count — run figure harnesses
/// single-threaded for clean numbers.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let (out, peak, _) = measure_peak_and_calls(f);
    (out, peak)
}

/// Like [`measure_peak`], but additionally returns the allocator call
/// deltas (`alloc` / `realloc` / `dealloc` counts) that accrued while
/// `f` ran — the alloc-churn columns of the bench output. Same global
/// lock and same caveat about unrelated threads.
pub fn measure_peak_and_calls<T>(f: impl FnOnce() -> T) -> (T, usize, AllocCalls) {
    let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let before = live_bytes();
    let calls_before = alloc_calls();
    reset_peak();
    let out = f();
    let delta = peak_bytes().saturating_sub(before);
    let calls = alloc_calls().since(&calls_before);
    (out, delta, calls)
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share process-global counters with every other test in
    // the binary, so they use spikes far larger than any concurrent
    // test's allocations and avoid tight upper bounds.
    const SPIKE: usize = 64 << 20; // 64 MiB

    #[test]
    fn peak_tracks_transient_allocations() {
        let (_, delta) = measure_peak(|| {
            let v: Vec<u8> = vec![7; SPIKE];
            drop(v);
            let w: Vec<u8> = vec![7; 1 << 10];
            w.len()
        });
        assert!(
            delta >= SPIKE / 2,
            "peak {delta} missed the {SPIKE}-byte spike"
        );
    }

    #[test]
    fn retained_allocations_count_as_live() {
        // Hold the measurement lock so the other memtrack spikes cannot
        // land inside this window.
        let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = live_bytes();
        let v: Vec<u8> = vec![1; SPIKE];
        assert!(live_bytes() >= before.saturating_add(SPIKE / 2));
        drop(v);
    }

    #[test]
    fn allocator_calls_are_counted() {
        let ((), _, calls) = measure_peak_and_calls(|| {
            let mut v: Vec<u8> = Vec::with_capacity(1 << 16);
            v.resize(1 << 18, 0); // forces at least one realloc
            drop(v);
        });
        assert!(calls.alloc >= 1, "missed the alloc: {calls:?}");
        assert!(calls.realloc >= 1, "missed the realloc: {calls:?}");
        assert!(calls.dealloc >= 1, "missed the dealloc: {calls:?}");
        assert_eq!(calls.total(), calls.alloc + calls.realloc + calls.dealloc);
        assert_eq!(calls.since(&calls), AllocCalls::default());
    }

    #[test]
    fn analytical_table_bytes_tracks_the_allocator() {
        use regcube_core::arena::{ArenaTable, ChunkPool};
        use regcube_core::table::{table_bytes, CuboidTable, TableStorage};
        use regcube_olap::cell::CellKey;
        use regcube_regress::Isb;

        // The satellite contract of the layout-aware `table_bytes`: the
        // analytical estimate must stay within a 2x band of the real
        // allocator's live-byte delta, for the row and arena layouts
        // alike. 50k cells keeps concurrent-test noise well below the
        // band.
        let _guard = MEASURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        const N: u32 = 50_000;
        let isb = Isb::new(0, 9, 1.0, 0.5).unwrap();

        let before = live_bytes();
        let mut row = CuboidTable::default();
        for v in 0..N {
            row.insert(CellKey::new(vec![v, v % 97, v % 53]), isb);
        }
        let measured = live_bytes().saturating_sub(before);
        let estimate = table_bytes(&row, 3);
        let ratio = estimate as f64 / measured.max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "row: analytical {estimate} vs measured {measured} (ratio {ratio:.2})"
        );

        let before = live_bytes();
        let mut arena = ArenaTable::new(3, ChunkPool::shared());
        for v in 0..N {
            arena.merge_row(&[v, v % 97, v % 53], &isb).unwrap();
        }
        let measured = live_bytes().saturating_sub(before);
        let estimate = arena.approx_bytes(3);
        let ratio = estimate as f64 / measured.max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "arena: analytical {estimate} vs measured {measured} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn measure_peak_is_composable() {
        let ((), first) = measure_peak(|| {
            let _v: Vec<u8> = vec![0; SPIKE];
        });
        let ((), second) = measure_peak(|| {
            let _v: Vec<u8> = vec![0; 1 << 12];
        });
        assert!(first >= SPIKE / 2);
        assert!(
            second < SPIKE / 2,
            "second measurement ({second}) must not inherit the first peak"
        );
    }
}
