//! Benchmark harness for `regcube`: regenerates every table and figure of
//! the paper's evaluation (Section 5) and provides the measurement
//! utilities the experiments share.
//!
//! * [`memtrack`] — a counting global allocator (true allocation peaks,
//!   the analogue of the paper's "Memory Usage (in M-bytes)" axis);
//! * [`report`] — fixed-width ASCII tables for figure output;
//! * [`experiments`] — one module per figure:
//!   [`experiments::fig8`] (time/space vs exception %),
//!   [`experiments::fig9`] (time/space vs m-layer size),
//!   [`experiments::fig10`] (time/space vs number of levels),
//!   [`experiments::tilt`] (Example 3's 71-vs-35,136 compression),
//!   [`experiments::incremental`] (Section 5's closing remark: per-unit
//!   incremental recomputation vs full recomputation);
//!   plus post-paper scale-out experiments:
//!   [`experiments::scaling`] (sharded cubing throughput),
//!   [`experiments::alarm`] (delta-driven sinks vs rescans),
//!   [`experiments::columnar`] (struct-of-arrays vs hash-map table
//!   layout on the hot tier roll-up) and
//!   [`experiments::arena`] (allocator churn of the window rollover:
//!   fresh row tables vs epoch-reclaimed arena tables).
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p regcube-bench --release --bin figures -- all
//! ```
//!
//! `--quick` shrinks the datasets for smoke runs; the defaults match the
//! paper's scales (D3L3C10T100K etc.). `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

pub mod experiments;
pub mod memtrack;
pub mod report;

/// Installs the counting allocator for every binary/bench linking this
/// crate, so [`memtrack`] peaks are meaningful everywhere.
#[global_allocator]
static GLOBAL_ALLOCATOR: memtrack::CountingAllocator = memtrack::CountingAllocator;
