//! Fixed-width ASCII reporting for the figure harness.

use std::fmt::Write as _;

/// A printable table: title, column headers, string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption (e.g. "Figure 8a: runtime vs exception %").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells; each row should have `columns.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Renders the table with right-aligned numeric-ish columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders the table as a JSON object
    /// `{"title": …, "rows": [{col: cell, …}, …]}` for plotting scripts.
    /// Hand-rolled (flat strings only) because `serde_json` is outside
    /// the allowed offline dependency set (DESIGN.md §5).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"title\":");
        push_json_string(&mut out, &self.title);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            for (j, (col, cell)) in self.columns.iter().zip(row.iter()).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, col);
                out.push(':');
                push_json_string(&mut out, cell);
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Appends a JSON string literal with the escapes flat tables can need.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a set of tables as one JSON array document.
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push(']');
    out
}

/// Formats bytes as MB with two decimals (the paper's M-bytes axis).
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a duration in seconds with three decimals.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a large count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "10.00".into()]);
        t.push_row(vec!["100".into(), "7.25".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len().max(lines[4].len()));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_mb(1024 * 1024), "1.00");
        assert_eq!(fmt_mb(0), "0.00");
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut t = Table::new("fig \"8a\"", &["x", "t\n"]);
        t.push_row(vec!["0.1".into(), "1.00".into()]);
        let json = t.to_json();
        assert_eq!(
            json,
            r#"{"title":"fig \"8a\"","rows":[{"x":"0.1","t\n":"1.00"}]}"#
        );
        let doc = tables_to_json(&[t.clone(), t]);
        assert!(doc.starts_with('['));
        assert!(doc.ends_with(']'));
        assert_eq!(doc.matches("\"title\"").count(), 2);
    }
}
