//! Arena allocator-churn baseline: emit or check `BENCH_arena.json`.
//!
//! ```text
//! # regenerate the committed baseline (repo root):
//! cargo run --release -p regcube-bench --bin arena_baseline -- --quick --write BENCH_arena.json
//! # CI regression gate:
//! cargo run --release -p regcube-bench --bin arena_baseline -- --quick --check BENCH_arena.json
//! ```
//!
//! Three properties of the arena backend are gated, each measured
//! in-process so machine speed normalizes out:
//!
//! * **allocator churn** — the tier roll-up into epoch-reset arena
//!   tables must perform at least 10x fewer allocator calls per unit
//!   than the same roll-up into fresh row tables (hard in-process
//!   gate), and the measured ratio must not drop more than the
//!   tolerance below the committed figure;
//! * **O(1) rollover** — across the three probe sizes (16x spread) the
//!   arena's per-reset latency must stay flat (max/min ≤ 8, where an
//!   O(N) reclamation would show ~16x) and must perform **zero**
//!   `dealloc` calls, while the row table's drop demonstrably frees one
//!   allocation per boxed key;
//! * **ingest throughput** — the arena backend's end-to-end rows/sec
//!   must not fall more than the tolerance below the row backend's,
//!   measured back-to-back in this process.
//!
//! Deterministic counters (cells, rows folded, keys interned, epochs
//! reclaimed, arena-layer allocations, row-drop dealloc counts) must
//! match the baseline exactly — a mismatch means behavior changed, not
//! speed. Tolerance defaults to 20%; override with
//! `ARENA_BASELINE_TOLERANCE=0.3`. Absolute rows/sec figures are
//! machine-dependent and advisory unless `ARENA_BASELINE_STRICT=1`.

use regcube_bench::experiments::arena::{
    run_ingest_phases, run_rollover_probe, run_rollup_phases, RolloverPoint,
};
use std::process::ExitCode;

const USAGE: &str = "usage: arena_baseline [--quick] (--write FILE | --check FILE)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let grab = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let (write, check) = (grab("--write"), grab("--check"));
    if write.is_none() == check.is_none() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let tolerance: f64 = std::env::var("ARENA_BASELINE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let mut failed = false;

    // -- Phase 1: tier roll-up churn (the >=10x gate). ------------------
    eprintln!(
        "[arena_baseline] measuring tier roll-up phases ({}) ...",
        if quick { "quick" } else { "full" }
    );
    let (row_rollup, arena_rollup) = run_rollup_phases(quick);
    if row_rollup.cells != arena_rollup.cells || row_rollup.rows_folded != arena_rollup.rows_folded
    {
        eprintln!(
            "FAIL roll-up phases diverged: row {} cells / {} rows vs arena {} cells / {} rows",
            row_rollup.cells, row_rollup.rows_folded, arena_rollup.cells, arena_rollup.rows_folded
        );
        return ExitCode::FAILURE;
    }
    let alloc_call_ratio = row_rollup.calls_per_unit / arena_rollup.calls_per_unit.max(1.0);
    if alloc_call_ratio < 10.0 {
        eprintln!(
            "FAIL arena roll-up saves only {alloc_call_ratio:.1}x allocator calls per unit \
             (row {:.0} vs arena {:.0}; the backend exists to save >=10x)",
            row_rollup.calls_per_unit, arena_rollup.calls_per_unit
        );
        failed = true;
    } else {
        eprintln!(
            "[arena_baseline] roll-up churn: row {:.0} vs arena {:.0} calls/unit \
             ({alloc_call_ratio:.0}x fewer) — ok",
            row_rollup.calls_per_unit, arena_rollup.calls_per_unit
        );
    }

    // -- Phase 2: O(1) rollover probe. ----------------------------------
    eprintln!("[arena_baseline] probing rollover reclamation ...");
    let rollover = run_rollover_probe();
    let reset_nanos: Vec<f64> = rollover.iter().map(|p| p.arena_reset_nanos).collect();
    let flat_max = reset_nanos.iter().cloned().fold(0.0f64, f64::max);
    let flat_min = reset_nanos.iter().cloned().fold(f64::INFINITY, f64::min);
    let rollover_flatness = flat_max / flat_min.max(1.0);
    for p in &rollover {
        if p.arena_reset_deallocs != 0 {
            eprintln!(
                "FAIL epoch reset at {} keys performed {} dealloc calls (must be 0)",
                p.keys, p.arena_reset_deallocs
            );
            failed = true;
        }
        if p.row_drop_deallocs < p.keys {
            eprintln!(
                "FAIL row-drop contrast broken at {} keys: only {} deallocs",
                p.keys, p.row_drop_deallocs
            );
            failed = true;
        }
    }
    if rollover_flatness > 8.0 {
        eprintln!(
            "FAIL rollover latency is not flat across sizes: {:.1}ns..{:.1}ns per reset \
             ({rollover_flatness:.1}x spread over a 16x size range; O(1) demands <=8x)",
            flat_min, flat_max
        );
        failed = true;
    } else {
        eprintln!(
            "[arena_baseline] rollover reclaim flat across {:?} keys: \
             {:.0}ns..{:.0}ns per reset ({rollover_flatness:.1}x spread), 0 deallocs — ok",
            rollover.iter().map(|p| p.keys).collect::<Vec<_>>(),
            flat_min,
            flat_max
        );
    }

    // -- Phase 3: end-to-end ingest throughput. -------------------------
    eprintln!("[arena_baseline] measuring ingest phases ...");
    let (row_ingest, arena_ingest) = run_ingest_phases(quick);
    if row_ingest.exception_cells != arena_ingest.exception_cells
        || row_ingest.rows != arena_ingest.rows
    {
        eprintln!(
            "FAIL ingest phases diverged: row {} exceptions / {} rows vs arena {} / {}",
            row_ingest.exception_cells,
            row_ingest.rows,
            arena_ingest.exception_cells,
            arena_ingest.rows
        );
        return ExitCode::FAILURE;
    }
    let ingest_ratio = arena_ingest.rows_per_sec / row_ingest.rows_per_sec.max(1e-9);
    if ingest_ratio < 1.0 - tolerance {
        eprintln!(
            "FAIL arena ingest slower than the row backend: {:.0} vs {:.0} rows/s \
             (ratio {ingest_ratio:.2}, floor {:.2})",
            arena_ingest.rows_per_sec,
            row_ingest.rows_per_sec,
            1.0 - tolerance
        );
        failed = true;
    } else {
        eprintln!(
            "[arena_baseline] ingest: arena {:.0} vs row {:.0} rows/s (ratio {ingest_ratio:.2}) — ok",
            arena_ingest.rows_per_sec, row_ingest.rows_per_sec
        );
    }

    let by_size =
        |f: &dyn Fn(&RolloverPoint) -> String| -> Vec<String> { rollover.iter().map(f).collect() };
    let drop_deallocs = by_size(&|p| p.row_drop_deallocs.to_string());
    let reset_lat = by_size(&|p| format!("{:.1}", p.arena_reset_nanos));
    let drop_lat = by_size(&|p| p.row_drop_nanos.to_string());
    let max_reset_deallocs = rollover
        .iter()
        .map(|p| p.arena_reset_deallocs)
        .max()
        .unwrap_or(0);
    let doc = format!(
        "{{\n  \"mode\": \"{}\",\n  \"rollup_cells\": {},\n  \"rollup_rows_folded\": {},\n  \
         \"rollup_row_calls_per_unit\": {:.1},\n  \"rollup_arena_calls_per_unit\": {:.1},\n  \
         \"alloc_call_ratio\": {:.1},\n  \"rollover_flatness\": {:.2},\n  \
         \"arena_reset_deallocs_max\": {},\n  \"row_drop_deallocs_small\": {},\n  \
         \"row_drop_deallocs_mid\": {},\n  \"row_drop_deallocs_large\": {},\n  \
         \"arena_reset_nanos_small\": {},\n  \"arena_reset_nanos_mid\": {},\n  \
         \"arena_reset_nanos_large\": {},\n  \"row_drop_nanos_small\": {},\n  \
         \"row_drop_nanos_mid\": {},\n  \"row_drop_nanos_large\": {},\n  \
         \"ingest_rows_folded\": {},\n  \"ingest_exception_cells\": {},\n  \
         \"keys_interned\": {},\n  \"epochs_reclaimed\": {},\n  \"arena_alloc_calls\": {},\n  \
         \"ingest_ratio\": {:.3},\n  \"row_rows_per_sec\": {:.1},\n  \
         \"arena_rows_per_sec\": {:.1}\n}}\n",
        if quick { "quick" } else { "full" },
        row_rollup.cells,
        row_rollup.rows_folded,
        row_rollup.calls_per_unit,
        arena_rollup.calls_per_unit,
        alloc_call_ratio,
        rollover_flatness,
        max_reset_deallocs,
        drop_deallocs[0],
        drop_deallocs[1],
        drop_deallocs[2],
        reset_lat[0],
        reset_lat[1],
        reset_lat[2],
        drop_lat[0],
        drop_lat[1],
        drop_lat[2],
        arena_ingest.rows,
        arena_ingest.exception_cells,
        arena_ingest.keys_interned,
        arena_ingest.epochs_reclaimed,
        arena_ingest.arena_alloc_calls,
        ingest_ratio,
        row_ingest.rows_per_sec,
        arena_ingest.rows_per_sec,
    );

    if let Some(path) = write {
        if failed {
            eprintln!("refusing to write {path}: in-process gates failed");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[arena_baseline] wrote {path}");
        print!("{doc}");
        return ExitCode::SUCCESS;
    }

    let path = check.expect("checked above");
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}; regenerate with --write");
            return ExitCode::FAILURE;
        }
    };
    let field = |name: &str| -> Option<f64> {
        let tag = format!("\"{name}\":");
        let rest = &baseline[baseline.find(&tag)? + tag.len()..];
        rest.split([',', '}', '\n']).next()?.trim().parse().ok()
    };
    // Mode first: a quick baseline checked against a full run would fail
    // every deterministic counter for an unrelated reason.
    let mode = if quick { "quick" } else { "full" };
    if !baseline.contains(&format!("\"mode\": \"{mode}\"")) {
        eprintln!(
            "FAIL baseline {path} was not recorded in {mode} mode — rerun \
             with the matching --quick flag or regenerate with --write"
        );
        failed = true;
    }
    for (name, actual) in [
        ("rollup_cells", row_rollup.cells as f64),
        ("rollup_rows_folded", row_rollup.rows_folded as f64),
        ("arena_reset_deallocs_max", max_reset_deallocs as f64),
        (
            "row_drop_deallocs_small",
            rollover[0].row_drop_deallocs as f64,
        ),
        (
            "row_drop_deallocs_mid",
            rollover[1].row_drop_deallocs as f64,
        ),
        (
            "row_drop_deallocs_large",
            rollover[2].row_drop_deallocs as f64,
        ),
        ("ingest_rows_folded", arena_ingest.rows as f64),
        (
            "ingest_exception_cells",
            arena_ingest.exception_cells as f64,
        ),
        ("keys_interned", arena_ingest.keys_interned as f64),
        ("epochs_reclaimed", arena_ingest.epochs_reclaimed as f64),
        ("arena_alloc_calls", arena_ingest.arena_alloc_calls as f64),
    ] {
        match field(name) {
            Some(expected) if expected == actual => {}
            Some(expected) => {
                eprintln!(
                    "FAIL {name}: baseline {expected} vs measured {actual} \
                     (deterministic counter changed — intended? regenerate \
                     the baseline with --write)"
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL baseline {path} is missing field {name}");
                failed = true;
            }
        }
    }
    // Ratio gates: both are measured in-process, so they transfer across
    // machines; they fail when the win shrinks more than the tolerance
    // below the committed figure.
    for (name, measured) in [
        ("alloc_call_ratio", alloc_call_ratio),
        ("ingest_ratio", ingest_ratio),
    ] {
        match field(name) {
            Some(expected) => {
                let floor = expected * (1.0 - tolerance);
                if measured < floor {
                    eprintln!(
                        "FAIL {name} regressed: {measured:.2} vs baseline {expected:.2} \
                         (floor {floor:.2} at {:.0}% tolerance)",
                        tolerance * 100.0
                    );
                    failed = true;
                } else {
                    eprintln!(
                        "[arena_baseline] {name} {measured:.2} (baseline {expected:.2}, \
                         floor {floor:.2}) — ok"
                    );
                }
            }
            None => {
                eprintln!("FAIL baseline {path} is missing field {name}");
                failed = true;
            }
        }
    }
    // Absolute rows/sec is machine-dependent: advisory unless strict.
    let strict = std::env::var("ARENA_BASELINE_STRICT").is_ok_and(|v| v == "1");
    match field("arena_rows_per_sec") {
        Some(expected) => {
            let floor = expected * (1.0 - tolerance);
            if arena_ingest.rows_per_sec < floor {
                eprintln!(
                    "{} arena throughput below baseline: {:.1} rows/s vs {:.1} \
                     (floor {:.1}; machine-dependent figure{})",
                    if strict { "FAIL" } else { "WARN" },
                    arena_ingest.rows_per_sec,
                    expected,
                    floor,
                    if strict { "" } else { ", advisory" }
                );
                failed |= strict;
            } else {
                eprintln!(
                    "[arena_baseline] arena ingest {:.1} rows/s (baseline {:.1}, \
                     floor {:.1}) — ok",
                    arena_ingest.rows_per_sec, expected, floor
                );
            }
        }
        None => {
            eprintln!("FAIL baseline {path} is missing field arena_rows_per_sec");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("[arena_baseline] check passed");
        ExitCode::SUCCESS
    }
}
