//! The figure harness: regenerates every table/figure of the paper's
//! evaluation section.
//!
//! ```text
//! cargo run -p regcube-bench --release --bin figures -- all
//! cargo run -p regcube-bench --release --bin figures -- fig8 fig10 --quick
//! cargo run -p regcube-bench --release --bin figures -- all --json out.json
//! ```

use regcube_bench::experiments::{
    alarm, arena, columnar, dims, fig10, fig8, fig9, incremental, lateness, scaling, serve, tilt,
};
use regcube_bench::report::{tables_to_json, Table};
use std::process::ExitCode;

const USAGE: &str =
    "usage: figures [all|fig8|fig9|fig10|dims|tilt|incremental|scaling|alarm|columnar|arena|lateness|serve]... [--quick] [--json FILE]

  fig8         time & memory vs exception %        (D3L3C10T100K)
  fig9         time & memory vs m-layer size       (D3L3C10, 1% exceptions)
  fig10        time & memory vs number of levels   (D2C10T10K, 1% exceptions)
  dims         time & memory vs number of dims     (L3, 1% exceptions)
  tilt         Figure 4 / Example 3 tilt-frame compression
  incremental  online per-unit vs monolithic recomputation, plus the
               frontier-dirty drill replay vs full step-3 replay phases
  scaling      sharded cubing throughput at 1/2/4/8 shards
  alarm        delta-driven alarm sinks vs rescan consumer overhead
  columnar     struct-of-arrays vs hash-map layout on the tier roll-up,
               plus the kernel-dispatch vs scalar-fallback fold phases
  arena        allocator churn of the window rollover: row tables vs
               epoch-reclaimed arena tables, plus the O(1) rollover probe
  lateness     watermark reordering: sorted vs bounded-shuffle vs
               straggler streams (amendment + drop accounting)
  serve        multi-tenant serving layer: skewed-fleet ingest
               throughput, lock-free dashboard query p50/p99, and the
               backpressure probe
  all          everything above
  --quick      shrunken datasets for smoke runs
  --json FILE  additionally write all tables as a JSON document";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut wanted: Vec<&str> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--json" {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            wanted.push(a.as_str());
        }
    }
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "fig8",
            "fig9",
            "fig10",
            "dims",
            "tilt",
            "incremental",
            "scaling",
            "alarm",
            "columnar",
            "arena",
            "lateness",
            "serve",
        ];
    }

    let mut all_tables: Vec<Table> = Vec::new();
    for name in &wanted {
        match *name {
            "fig8" => {
                let dataset = if quick { "D3L3C4T5K" } else { "D3L3C10T100K" };
                eprintln!("[figures] running fig8 on {dataset} ...");
                let points = fig8::run(quick);
                all_tables.extend(fig8::print(&points, dataset));
            }
            "fig9" => {
                let structure = if quick { "D3L3C4" } else { "D3L3C10" };
                eprintln!("[figures] running fig9 on {structure} ...");
                let points = fig9::run(quick);
                all_tables.extend(fig9::print(&points, structure));
            }
            "fig10" => {
                let structure = if quick { "D2C4T2K" } else { "D2C10T10K" };
                eprintln!("[figures] running fig10 on {structure} ...");
                let points = fig10::run(quick);
                all_tables.extend(fig10::print(&points, structure));
            }
            "dims" => {
                let structure = if quick { "C3T1K" } else { "C6T10K" };
                eprintln!("[figures] running dims on {structure} ...");
                let points = dims::run(quick);
                all_tables.extend(dims::print(&points, structure));
            }
            "tilt" => {
                eprintln!("[figures] running tilt ...");
                let report = tilt::run(quick);
                all_tables.extend(tilt::print(&report));
            }
            "incremental" => {
                eprintln!("[figures] running incremental ...");
                let report = incremental::run(quick);
                all_tables.extend(incremental::print(&report));
            }
            "scaling" => {
                eprintln!("[figures] running scaling ...");
                let points = scaling::run(quick);
                all_tables.extend(scaling::print(&points));
            }
            "alarm" => {
                eprintln!("[figures] running alarm ...");
                let points = alarm::run(quick);
                all_tables.extend(alarm::print(&points));
            }
            "columnar" => {
                eprintln!("[figures] running columnar ...");
                let points = columnar::run(quick);
                all_tables.extend(columnar::print(&points));
            }
            "arena" => {
                eprintln!("[figures] running arena ...");
                let points = arena::run(quick);
                let phases = arena::run_rollup_phases(quick);
                let rollover = arena::run_rollover_probe();
                all_tables.extend(arena::print(&points, &phases, &rollover));
            }
            "lateness" => {
                eprintln!("[figures] running lateness ...");
                let points = lateness::run(quick);
                all_tables.extend(lateness::print(&points));
            }
            "serve" => {
                eprintln!("[figures] running serve ...");
                let points = serve::run(quick);
                all_tables.extend(serve::print(&points));
            }
            other => {
                eprintln!("unknown experiment: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = json_path {
        let doc = tables_to_json(&all_tables);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[figures] wrote {} tables to {path}", all_tables.len());
    }
    ExitCode::SUCCESS
}
