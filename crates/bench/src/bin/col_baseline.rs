//! Columnar kernel baseline: emit or check `BENCH_columnar.json`.
//!
//! ```text
//! # regenerate the committed baseline (repo root):
//! cargo run --release -p regcube-bench --bin col_baseline -- --quick --write BENCH_columnar.json
//! # CI regression gate (fails if the kernel speedup drops >20%):
//! cargo run --release -p regcube-bench --bin col_baseline -- --quick --check BENCH_columnar.json
//! ```
//!
//! The gate compares three kinds of figures:
//!
//! * the **fold/dispatch counts** (total rows folded, kernel rows,
//!   scalar rows) and the **retained exception cells**, which are
//!   deterministic for the fixed workload and must match the baseline
//!   exactly — a mismatch means the dispatch logic (or the cube
//!   semantics) changed behavior;
//! * the **kernel speedup** (kernel-dispatch rows/sec over the
//!   forced-scalar rows/sec, both measured in this run on this
//!   machine), which normalizes machine speed out — this is the
//!   enforced throughput gate: it fails when the speedup drops more
//!   than the tolerance (default 20%, override with
//!   `COL_BASELINE_TOLERANCE=0.3`) below the committed figure;
//! * the **absolute vectorized rows/sec**, which is machine-dependent
//!   and therefore only advisory by default — set `COL_BASELINE_STRICT=1`
//!   to enforce it too (useful when the check always runs on the same
//!   runner class as the committed baseline).
//!
//! The two phases also cross-check each other in-process: both must
//! retain the same exception cells and fold the same number of rows,
//! or the run fails before any baseline comparison.

use regcube_bench::experiments::columnar::run_kernel_phases;
use std::process::ExitCode;

const USAGE: &str = "usage: col_baseline [--quick] (--write FILE | --check FILE)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let grab = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let (write, check) = (grab("--write"), grab("--check"));
    if write.is_none() == check.is_none() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "[col_baseline] measuring kernel phases ({}) ...",
        if quick { "quick" } else { "full" }
    );
    let (vec_phase, scalar_phase) = run_kernel_phases(quick);

    // In-process parity first: identical semantics and identical total
    // fold work are preconditions for the speedup to mean anything.
    if vec_phase.exception_cells != scalar_phase.exception_cells {
        eprintln!(
            "FAIL kernel and scalar phases disagree on exceptions: {} vs {}",
            vec_phase.exception_cells, scalar_phase.exception_cells
        );
        return ExitCode::FAILURE;
    }
    if vec_phase.rows != scalar_phase.rows {
        eprintln!(
            "FAIL kernel and scalar phases folded different row counts: {} vs {}",
            vec_phase.rows, scalar_phase.rows
        );
        return ExitCode::FAILURE;
    }
    if scalar_phase.rows_folded_simd != 0 {
        eprintln!(
            "FAIL forced-scalar phase reported {} kernel rows",
            scalar_phase.rows_folded_simd
        );
        return ExitCode::FAILURE;
    }

    let kernel_speedup = vec_phase.rows_per_sec / scalar_phase.rows_per_sec.max(1e-9);
    let doc = format!(
        "{{\n  \"mode\": \"{}\",\n  \"vectorized_rows_per_sec\": {:.1},\n  \
         \"scalar_rows_per_sec\": {:.1},\n  \"kernel_speedup\": {:.2},\n  \
         \"rows_folded\": {},\n  \"rows_folded_simd\": {},\n  \
         \"rows_folded_scalar\": {},\n  \"exception_cells\": {}\n}}\n",
        if quick { "quick" } else { "full" },
        vec_phase.rows_per_sec,
        scalar_phase.rows_per_sec,
        kernel_speedup,
        vec_phase.rows,
        vec_phase.rows_folded_simd,
        vec_phase.rows_folded_scalar,
        vec_phase.exception_cells,
    );

    if let Some(path) = write {
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[col_baseline] wrote {path}");
        print!("{doc}");
        return ExitCode::SUCCESS;
    }

    let path = check.expect("checked above");
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}; regenerate with --write");
            return ExitCode::FAILURE;
        }
    };
    let field = |name: &str| -> Option<f64> {
        let tag = format!("\"{name}\":");
        let rest = &baseline[baseline.find(&tag)? + tag.len()..];
        rest.split([',', '}', '\n']).next()?.trim().parse().ok()
    };
    let mut failed = false;
    // Mode first: comparing a quick baseline against a full run (or
    // vice versa) would fail every deterministic counter for a reason
    // that has nothing to do with the kernels.
    let mode = if quick { "quick" } else { "full" };
    if !baseline.contains(&format!("\"mode\": \"{mode}\"")) {
        eprintln!(
            "FAIL baseline {path} was not recorded in {mode} mode — rerun \
             with the matching --quick flag or regenerate with --write"
        );
        failed = true;
    }
    for (name, actual) in [
        ("rows_folded", vec_phase.rows as f64),
        ("rows_folded_simd", vec_phase.rows_folded_simd as f64),
        ("rows_folded_scalar", vec_phase.rows_folded_scalar as f64),
        ("exception_cells", vec_phase.exception_cells as f64),
    ] {
        match field(name) {
            Some(expected) if expected == actual => {}
            Some(expected) => {
                eprintln!(
                    "FAIL {name}: baseline {expected} vs measured {actual} \
                     (deterministic counter changed — intended? regenerate \
                     the baseline with --write)"
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL baseline {path} is missing field {name}");
                failed = true;
            }
        }
    }
    let tolerance: f64 = std::env::var("COL_BASELINE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    // The enforced throughput gate: the kernel-vs-scalar speedup,
    // measured in-process, is independent of how fast this machine is
    // relative to the one that recorded the baseline.
    match field("kernel_speedup") {
        Some(expected) => {
            let floor = expected * (1.0 - tolerance);
            if kernel_speedup < floor {
                eprintln!(
                    "FAIL kernel speedup regressed: {:.2}x vs baseline \
                     {:.2}x (floor {:.2}x at {:.0}% tolerance)",
                    kernel_speedup,
                    expected,
                    floor,
                    tolerance * 100.0
                );
                failed = true;
            } else {
                eprintln!(
                    "[col_baseline] kernel speedup {:.2}x (baseline {:.2}x, \
                     floor {:.2}x) — ok",
                    kernel_speedup, expected, floor
                );
            }
        }
        None => {
            eprintln!("FAIL baseline {path} is missing field kernel_speedup");
            failed = true;
        }
    }
    // Absolute rows/sec is machine-dependent: advisory unless the
    // operator opts into strict mode (same runner class as baseline).
    let strict = std::env::var("COL_BASELINE_STRICT").is_ok_and(|v| v == "1");
    match field("vectorized_rows_per_sec") {
        Some(expected) => {
            let floor = expected * (1.0 - tolerance);
            if vec_phase.rows_per_sec < floor {
                eprintln!(
                    "{} vectorized throughput below baseline: {:.1} rows/s \
                     vs {:.1} (floor {:.1}; machine-dependent figure{})",
                    if strict { "FAIL" } else { "WARN" },
                    vec_phase.rows_per_sec,
                    expected,
                    floor,
                    if strict { "" } else { ", advisory" }
                );
                failed |= strict;
            } else {
                eprintln!(
                    "[col_baseline] vectorized {:.1} rows/s (baseline {:.1}, \
                     floor {:.1}) — ok",
                    vec_phase.rows_per_sec, expected, floor
                );
            }
        }
        None => {
            eprintln!("FAIL baseline {path} is missing field vectorized_rows_per_sec");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("[col_baseline] check passed");
        ExitCode::SUCCESS
    }
}
