//! Serving-layer baseline: emit or check `BENCH_serve.json`.
//!
//! ```text
//! # regenerate the committed baseline (repo root):
//! cargo run --release -p regcube-bench --bin serve_baseline -- --quick --write BENCH_serve.json
//! # CI regression gate:
//! cargo run --release -p regcube-bench --bin serve_baseline -- --quick --check BENCH_serve.json
//! ```
//!
//! Gated properties of the multi-tenant serving layer:
//!
//! * **deterministic counters** — accepted records (the skew formula),
//!   per-tenant units, total alarms from the hot ramp, and the
//!   backpressure probe's exact accept/reject split must match the
//!   committed baseline exactly: a mismatch means serving *behavior*
//!   changed, not speed;
//! * **liveness** — the reader threads must complete queries during
//!   live ingest (a serving layer whose readers starve is broken even
//!   if nothing panics);
//! * **throughput & latency** — ingest krec/s and the dashboard query
//!   p50/p99 are machine-dependent and advisory by default; set
//!   `SERVE_BASELINE_STRICT=1` to enforce them within the tolerance.
//!
//! Tolerance defaults to 30% (latency tails are the noisiest figures
//! the harness gates); override with `SERVE_BASELINE_TOLERANCE=0.5`.

use regcube_bench::experiments::serve;
use std::process::ExitCode;

const USAGE: &str = "usage: serve_baseline [--quick] (--write FILE | --check FILE)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let grab = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let (write, check) = (grab("--write"), grab("--check"));
    if write.is_none() == check.is_none() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let tolerance: f64 = std::env::var("SERVE_BASELINE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.3);
    let mut failed = false;

    eprintln!(
        "[serve_baseline] driving the serving layer ({}) ...",
        if quick { "quick" } else { "full" }
    );
    let points = serve::run(quick);
    let (load, probe) = (&points[0], &points[1]);
    let ingest_krps = load.records as f64 / load.ingest.as_secs_f64().max(1e-9) / 1e3;

    // In-process gates that hold on any machine.
    if load.queries == 0 {
        eprintln!("FAIL readers completed no queries during live ingest");
        failed = true;
    }
    if load.alarms == 0 {
        eprintln!("FAIL the hot-ramp workload raised no alarms");
        failed = true;
    }
    if load.rejections != 0 {
        eprintln!(
            "FAIL the load phase rejected {} records despite sized queues",
            load.rejections
        );
        failed = true;
    }
    if probe.rejections == 0 {
        eprintln!("FAIL the backpressure probe never saturated");
        failed = true;
    }
    eprintln!(
        "[serve_baseline] load: {} tenants, {} records at {ingest_krps:.0} krec/s, \
         {} queries (p50 {:.1}us, p99 {:.1}us), {} alarms; \
         probe: {} accepted / {} rejected",
        load.tenants,
        load.records,
        load.queries,
        load.query_p50_us,
        load.query_p99_us,
        load.alarms,
        probe.records,
        probe.rejections
    );

    let doc = format!(
        "{{\n  \"mode\": \"{}\",\n  \"tenants\": {},\n  \"units\": {},\n  \
         \"records_accepted\": {},\n  \"alarms\": {},\n  \
         \"probe_accepted\": {},\n  \"probe_rejections\": {},\n  \
         \"ingest_krps\": {:.1},\n  \"query_p50_us\": {:.1},\n  \
         \"query_p99_us\": {:.1},\n  \"queries\": {}\n}}\n",
        if quick { "quick" } else { "full" },
        load.tenants,
        load.units,
        load.records,
        load.alarms,
        probe.records,
        probe.rejections,
        ingest_krps,
        load.query_p50_us,
        load.query_p99_us,
        load.queries,
    );

    if let Some(path) = write {
        if failed {
            eprintln!("refusing to write {path}: in-process gates failed");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[serve_baseline] wrote {path}");
        print!("{doc}");
        return ExitCode::SUCCESS;
    }

    let path = check.expect("checked above");
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}; regenerate with --write");
            return ExitCode::FAILURE;
        }
    };
    let field = |name: &str| -> Option<f64> {
        let tag = format!("\"{name}\":");
        let rest = &baseline[baseline.find(&tag)? + tag.len()..];
        rest.split([',', '}', '\n']).next()?.trim().parse().ok()
    };
    let mode = if quick { "quick" } else { "full" };
    if !baseline.contains(&format!("\"mode\": \"{mode}\"")) {
        eprintln!(
            "FAIL baseline {path} was not recorded in {mode} mode — rerun \
             with the matching --quick flag or regenerate with --write"
        );
        failed = true;
    }
    // Deterministic counters: exact matches or the behavior changed.
    for (name, actual) in [
        ("tenants", load.tenants as f64),
        ("units", load.units as f64),
        ("records_accepted", load.records as f64),
        ("alarms", load.alarms as f64),
        ("probe_accepted", probe.records as f64),
        ("probe_rejections", probe.rejections as f64),
    ] {
        match field(name) {
            Some(expected) if expected == actual => {}
            Some(expected) => {
                eprintln!(
                    "FAIL {name}: baseline {expected} vs measured {actual} \
                     (deterministic counter changed — intended? regenerate \
                     the baseline with --write)"
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL baseline {path} is missing field {name}");
                failed = true;
            }
        }
    }
    // Machine-dependent figures: advisory unless strict.
    let strict = std::env::var("SERVE_BASELINE_STRICT").is_ok_and(|v| v == "1");
    let advisory = [
        ("ingest_krps", ingest_krps, true),
        ("query_p50_us", load.query_p50_us, false),
        ("query_p99_us", load.query_p99_us, false),
    ];
    for (name, measured, higher_is_better) in advisory {
        match field(name) {
            Some(expected) => {
                let (bound, breached) = if higher_is_better {
                    let floor = expected * (1.0 - tolerance);
                    (floor, measured < floor)
                } else {
                    let ceiling = expected * (1.0 + tolerance);
                    (ceiling, measured > ceiling)
                };
                if breached {
                    eprintln!(
                        "{} {name} regressed: {measured:.1} vs baseline {expected:.1} \
                         (bound {bound:.1}; machine-dependent figure{})",
                        if strict { "FAIL" } else { "WARN" },
                        if strict { "" } else { ", advisory" }
                    );
                    failed |= strict;
                } else {
                    eprintln!(
                        "[serve_baseline] {name} {measured:.1} (baseline {expected:.1}, \
                         bound {bound:.1}) — ok"
                    );
                }
            }
            None => {
                eprintln!("FAIL baseline {path} is missing field {name}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("[serve_baseline] check passed");
        ExitCode::SUCCESS
    }
}
