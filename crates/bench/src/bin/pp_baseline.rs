//! Popular-path incremental-drill baseline: emit or check
//! `BENCH_pp_incremental.json`.
//!
//! ```text
//! # regenerate the committed baseline (repo root):
//! cargo run --release -p regcube-bench --bin pp_baseline -- --quick --write BENCH_pp_incremental.json
//! # CI regression gate (fails if quiet-stream units/sec drops >20%):
//! cargo run --release -p regcube-bench --bin pp_baseline -- --quick --check BENCH_pp_incremental.json
//! ```
//!
//! The gate compares three kinds of figures:
//!
//! * the **replayed/skipped cuboid counts**, which are deterministic
//!   for the fixed workload and must match the baseline exactly — a
//!   mismatch means the frontier-dirty logic changed behavior;
//! * the **quiet-stream speedup** (frontier-dirty units/sec over the
//!   full-replay units/sec, both measured in this run on this
//!   machine), which normalizes machine speed out — this is the
//!   enforced throughput gate: it fails when the speedup drops more
//!   than the tolerance (default 20%, override with
//!   `PP_BASELINE_TOLERANCE=0.3`) below the committed figure;
//! * the **absolute quiet-stream units/sec**, which is
//!   machine-dependent and therefore only advisory by default — set
//!   `PP_BASELINE_STRICT=1` to enforce it too (useful when the check
//!   always runs on the same runner class as the committed baseline).

use regcube_bench::experiments::incremental::run_drill_phases;
use std::process::ExitCode;

const USAGE: &str = "usage: pp_baseline [--quick] (--write FILE | --check FILE)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let grab = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let (write, check) = (grab("--write"), grab("--check"));
    if write.is_none() == check.is_none() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "[pp_baseline] measuring drill phases ({}) ...",
        if quick { "quick" } else { "full" }
    );
    let (quiet, churny) = run_drill_phases(quick);
    let doc = format!(
        "{{\n  \"mode\": \"{}\",\n  \"quiet_units_per_sec\": {:.1},\n  \
         \"quiet_speedup\": {:.2},\n  \"quiet_replayed_cuboids\": {},\n  \
         \"quiet_skipped_cuboids\": {},\n  \"churny_units_per_sec\": {:.1},\n  \
         \"churny_replayed_cuboids\": {},\n  \"churny_skipped_cuboids\": {}\n}}\n",
        if quick { "quick" } else { "full" },
        quiet.units_per_sec,
        quiet.speedup,
        quiet.replayed_cuboids,
        quiet.skipped_cuboids,
        churny.units_per_sec,
        churny.replayed_cuboids,
        churny.skipped_cuboids,
    );

    if let Some(path) = write {
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[pp_baseline] wrote {path}");
        print!("{doc}");
        return ExitCode::SUCCESS;
    }

    let path = check.expect("checked above");
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}; regenerate with --write");
            return ExitCode::FAILURE;
        }
    };
    let field = |name: &str| -> Option<f64> {
        let tag = format!("\"{name}\":");
        let rest = &baseline[baseline.find(&tag)? + tag.len()..];
        rest.split([',', '}', '\n']).next()?.trim().parse().ok()
    };
    let mut failed = false;
    // Mode first: comparing a quick baseline against a full run (or
    // vice versa) would fail every deterministic counter for a reason
    // that has nothing to do with the frontier logic.
    let mode = if quick { "quick" } else { "full" };
    if !baseline.contains(&format!("\"mode\": \"{mode}\"")) {
        eprintln!(
            "FAIL baseline {path} was not recorded in {mode} mode — rerun \
             with the matching --quick flag or regenerate with --write"
        );
        failed = true;
    }
    for (name, actual) in [
        ("quiet_replayed_cuboids", quiet.replayed_cuboids as f64),
        ("quiet_skipped_cuboids", quiet.skipped_cuboids as f64),
        ("churny_replayed_cuboids", churny.replayed_cuboids as f64),
        ("churny_skipped_cuboids", churny.skipped_cuboids as f64),
    ] {
        match field(name) {
            Some(expected) if expected == actual => {}
            Some(expected) => {
                eprintln!(
                    "FAIL {name}: baseline {expected} vs measured {actual} \
                     (deterministic counter changed — intended? regenerate \
                     the baseline with --write)"
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL baseline {path} is missing field {name}");
                failed = true;
            }
        }
    }
    let tolerance: f64 = std::env::var("PP_BASELINE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    // The enforced throughput gate: the quiet-stream speedup over the
    // full replay, measured in-process, is independent of how fast
    // this machine is relative to the one that recorded the baseline.
    match field("quiet_speedup") {
        Some(expected) => {
            let floor = expected * (1.0 - tolerance);
            if quiet.speedup < floor {
                eprintln!(
                    "FAIL quiet-stream speedup regressed: {:.2}x vs baseline \
                     {:.2}x (floor {:.2}x at {:.0}% tolerance)",
                    quiet.speedup,
                    expected,
                    floor,
                    tolerance * 100.0
                );
                failed = true;
            } else {
                eprintln!(
                    "[pp_baseline] quiet speedup {:.2}x (baseline {:.2}x, \
                     floor {:.2}x) — ok",
                    quiet.speedup, expected, floor
                );
            }
        }
        None => {
            eprintln!("FAIL baseline {path} is missing field quiet_speedup");
            failed = true;
        }
    }
    // Absolute units/sec is machine-dependent: advisory unless the
    // operator opts into strict mode (same runner class as baseline).
    let strict = std::env::var("PP_BASELINE_STRICT").is_ok_and(|v| v == "1");
    match field("quiet_units_per_sec") {
        Some(expected) => {
            let floor = expected * (1.0 - tolerance);
            if quiet.units_per_sec < floor {
                eprintln!(
                    "{} quiet-stream throughput below baseline: {:.1} units/s \
                     vs {:.1} (floor {:.1}; machine-dependent figure{})",
                    if strict { "FAIL" } else { "WARN" },
                    quiet.units_per_sec,
                    expected,
                    floor,
                    if strict { "" } else { ", advisory" }
                );
                failed |= strict;
            } else {
                eprintln!(
                    "[pp_baseline] quiet {:.1} units/s (baseline {:.1}, floor \
                     {:.1}) — ok",
                    quiet.units_per_sec, expected, floor
                );
            }
        }
        None => {
            eprintln!("FAIL baseline {path} is missing field quiet_units_per_sec");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("[pp_baseline] check passed");
        ExitCode::SUCCESS
    }
}
