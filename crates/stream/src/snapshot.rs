//! Immutable unit-boundary snapshots of the online engine — the
//! serving-side view of a cube.
//!
//! [`OnlineEngine::close_unit`](crate::online::OnlineEngine::close_unit)
//! mutates the engine, so a dashboard query running against the live
//! engine must serialize with ingestion — one `&mut self` borrow blocks
//! every reader. A [`CubeSnapshot`] breaks that coupling: at any unit
//! boundary [`OnlineEngine::snapshot`](crate::online::OnlineEngine::snapshot)
//! captures everything queryable — the [`CubeResult`], both tilt-frame
//! families (the warehoused m- and o-layer ladders), the last unit's
//! alarms and the run statistics — into one immutable value that can be
//! shared behind an [`std::sync::Arc`] and read from any number of
//! threads while the engine keeps ingesting.
//!
//! The snapshot answers the same queries as the engine and **returns
//! the same bytes** for any unit the snapshot covers:
//! [`drill_at`](CubeSnapshot::drill_at) /
//! [`drill_history`](CubeSnapshot::drill_history) share one
//! implementation with the engine-blocking path (pinned by
//! `crates/stream/tests/snapshot.rs`), and
//! [`drill_children`](CubeSnapshot::drill_children) /
//! [`drill_descendants`](CubeSnapshot::drill_descendants) run the exact
//! core drill over the captured cube.
//!
//! `regcube_serve` publishes one snapshot per closed unit through a
//! double-buffered epoch-swapped cell, which is what makes multi-tenant
//! dashboard serving lock-free for readers.

use crate::error::StreamError;
use crate::online::{Alarm, TiltHit};
use crate::Result;
use regcube_core::drill::{drill_children, drill_descendants, DrillHit};
use regcube_core::{CoreError, CubeResult, ExceptionPolicy, RunStats};
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;
use regcube_tilt::{TiltFrame, TiltSpec};
use std::fmt::Write as _;

/// An immutable, internally consistent view of one engine at one unit
/// boundary: cube, tilt ladders, alarm state and statistics, all from
/// the same [`epoch`](Self::epoch). Cheap to share (`Arc`), never
/// mutated after construction — readers can hold one for as long as
/// they like without blocking ingestion.
#[derive(Debug, Clone)]
pub struct CubeSnapshot {
    pub(crate) epoch: u64,
    pub(crate) unit: Option<i64>,
    pub(crate) schema: CubeSchema,
    pub(crate) cube: Option<CubeResult>,
    pub(crate) frames: FxHashMap<CellKey, TiltFrame<Isb>>,
    pub(crate) o_frames: FxHashMap<CellKey, TiltFrame<Isb>>,
    pub(crate) tilt_spec: TiltSpec,
    pub(crate) policy: ExceptionPolicy,
    pub(crate) m_layer: CuboidSpec,
    pub(crate) o_layer: CuboidSpec,
    pub(crate) alarms: Vec<Alarm>,
    pub(crate) stats: RunStats,
}

impl CubeSnapshot {
    /// The publication epoch: the number of units the engine had closed
    /// when the snapshot was taken. Strictly monotone across the
    /// snapshots of one engine — the serving layer's consistency token.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The last closed unit index (`None` before the first close).
    #[inline]
    pub fn unit(&self) -> Option<i64> {
        self.unit
    }

    /// The captured cube.
    ///
    /// # Errors
    /// [`StreamError::Core`] if no non-empty unit had closed when the
    /// snapshot was taken — the same error the live engine returns.
    pub fn cube(&self) -> Result<&CubeResult> {
        self.cube.as_ref().ok_or_else(|| {
            StreamError::from(CoreError::NotMaterialized {
                detail: "no unit with data had been closed when this snapshot was taken".into(),
            })
        })
    }

    /// The captured cube, if any non-empty unit had closed.
    #[inline]
    pub fn try_cube(&self) -> Option<&CubeResult> {
        self.cube.as_ref()
    }

    /// The schema the cube is built over.
    #[inline]
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The o-layer alarms of the last closed unit, hottest first —
    /// exactly [`UnitReport::alarms`](crate::online::UnitReport) of
    /// that close.
    #[inline]
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// The engine's run statistics at capture time (serving counters
    /// included).
    #[inline]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The captured tilt frame of an m-layer cell, if the cell had ever
    /// been active.
    pub fn tilt_frame(&self, key: &CellKey) -> Option<&TiltFrame<Isb>> {
        self.frames.get(key)
    }

    /// The captured tilt frame of an o-layer cell.
    pub fn o_layer_frame(&self, key: &CellKey) -> Option<&TiltFrame<Isb>> {
        self.o_frames.get(key)
    }

    /// Time-travel drill over the captured ladders — byte-identical to
    /// [`OnlineEngine::drill_at`](crate::online::OnlineEngine::drill_at)
    /// on the engine the snapshot was taken from (one shared
    /// implementation).
    ///
    /// # Errors
    /// [`StreamError::Tilt`] for a level the tilt spec does not define.
    pub fn drill_at(&self, level: usize, key: &CellKey) -> Result<Vec<TiltHit>> {
        drill_frames_at(
            &self.frames,
            &self.o_frames,
            &self.tilt_spec,
            &self.policy,
            &self.m_layer,
            &self.o_layer,
            level,
            key,
        )
    }

    /// Time-travel drill across the whole captured ladder, coarsest
    /// level first — byte-identical to
    /// [`OnlineEngine::drill_history`](crate::online::OnlineEngine::drill_history).
    ///
    /// # Errors
    /// Propagates [`drill_at`](Self::drill_at) failures.
    pub fn drill_history(&self, key: &CellKey) -> Result<Vec<TiltHit>> {
        let mut out = Vec::new();
        for level in (0..self.tilt_spec.num_levels()).rev() {
            out.extend(self.drill_at(level, key)?);
        }
        Ok(out)
    }

    /// Drills one step down from a retained cell of the captured cube.
    ///
    /// # Errors
    /// [`StreamError::Core`] if the snapshot predates the first
    /// non-empty unit close.
    pub fn drill_children(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Vec<DrillHit>> {
        Ok(drill_children(&self.schema, self.cube()?, cuboid, key))
    }

    /// Finds all retained exceptional descendants of a cell of the
    /// captured cube.
    ///
    /// # Errors
    /// [`StreamError::Core`] if the snapshot predates the first
    /// non-empty unit close.
    pub fn drill_descendants(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Vec<DrillHit>> {
        Ok(drill_descendants(&self.schema, self.cube()?, cuboid, key))
    }

    /// A canonical, deterministic serialization of everything the
    /// snapshot can answer: cube tables (sorted), exception tables,
    /// both tilt-ladder families (every slot's measure rendered through
    /// its IEEE-754 bits, so two snapshots render identically **iff**
    /// their queryable state is bit-identical) and the alarm state.
    /// Timing fields are deliberately excluded. This is the equality
    /// witness of the concurrency suites: a reader-observed snapshot
    /// must render byte-for-byte like the single-threaded reference at
    /// the same epoch.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "epoch {} unit {:?}", self.epoch, self.unit);
        match &self.cube {
            None => {
                let _ = writeln!(out, "cube: none");
            }
            Some(cube) => {
                let mut m: Vec<_> = cube.m_table().iter().collect();
                m.sort_by(|a, b| a.0.cmp(b.0));
                for (k, isb) in m {
                    let _ = writeln!(out, "m {k} {}", fmt_isb(isb));
                }
                let mut o: Vec<_> = cube.o_table().iter().collect();
                o.sort_by(|a, b| a.0.cmp(b.0));
                for (k, isb) in o {
                    let _ = writeln!(out, "o {k} {}", fmt_isb(isb));
                }
                let mut exc: Vec<_> = cube.iter_exceptions().collect();
                exc.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
                for (cuboid, k, isb) in exc {
                    let _ = writeln!(out, "exc {cuboid}{k} {}", fmt_isb(isb));
                }
                let mut paths: Vec<_> = cube.path_tables().iter().collect();
                paths.sort_by(|a, b| a.0.cmp(b.0));
                for (cuboid, table) in paths {
                    let mut cells: Vec<_> = table.iter().collect();
                    cells.sort_by(|a, b| a.0.cmp(b.0));
                    for (k, isb) in cells {
                        let _ = writeln!(out, "path {cuboid}{k} {}", fmt_isb(isb));
                    }
                }
            }
        }
        for (tag, frames) in [("mframe", &self.frames), ("oframe", &self.o_frames)] {
            let mut keys: Vec<_> = frames.keys().collect();
            keys.sort();
            for key in keys {
                let frame = &frames[key];
                for (level, slot) in frame.timeline() {
                    let _ = writeln!(
                        out,
                        "{tag} {key} L{level} u{} {}",
                        slot.unit,
                        fmt_isb(&slot.measure)
                    );
                }
            }
        }
        for a in &self.alarms {
            let _ = writeln!(
                out,
                "alarm {} score={:016x} threshold={:016x} {}",
                a.key,
                a.score.to_bits(),
                a.threshold.to_bits(),
                fmt_isb(&a.measure)
            );
        }
        out
    }
}

/// Renders one ISB with bit-exact float fields.
fn fmt_isb(isb: &Isb) -> String {
    format!(
        "[{},{}] b={:016x} s={:016x}",
        isb.start(),
        isb.end(),
        isb.base().to_bits(),
        isb.slope().to_bits()
    )
}

/// The one shared time-travel drill implementation: scores every
/// retained slot of `key` at `level` with the policy's reference mode
/// against its predecessor. Looks the cell up in the m-layer frames
/// first, then the o-layer frames — the engine-blocking
/// [`OnlineEngine::drill_at`](crate::online::OnlineEngine::drill_at)
/// and the lock-free [`CubeSnapshot::drill_at`] both call this, which
/// is what makes "snapshot ≡ live" hold by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drill_frames_at(
    frames: &FxHashMap<CellKey, TiltFrame<Isb>>,
    o_frames: &FxHashMap<CellKey, TiltFrame<Isb>>,
    tilt_spec: &TiltSpec,
    policy: &ExceptionPolicy,
    m_layer: &CuboidSpec,
    o_layer: &CuboidSpec,
    level: usize,
    key: &CellKey,
) -> Result<Vec<TiltHit>> {
    let (frame, cuboid) = match (frames.get(key), o_frames.get(key)) {
        (Some(f), _) => (f, m_layer),
        (None, Some(f)) => (f, o_layer),
        (None, None) => {
            // Validate the level anyway so typos don't read as
            // "no history".
            tilt_spec
                .finest_units_per(level)
                .map_err(StreamError::from)?;
            return Ok(Vec::new());
        }
    };
    let threshold = policy.threshold_for(cuboid);
    let slots = frame.slots(level).map_err(StreamError::from)?;
    let level_name = frame.spec().levels()[level].name.clone();
    let mut prev: Option<Isb> = None;
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        let score = policy.ref_mode().score(&slot.measure, prev.as_ref());
        out.push(TiltHit {
            level,
            level_name: level_name.clone(),
            slot_unit: slot.unit,
            measure: slot.measure,
            score,
            exceptional: score >= threshold,
        });
        prev = Some(slot.measure);
    }
    Ok(out)
}
