//! Versioned, checksummed checkpoint/recovery for the online engine.
//!
//! A process restart used to lose every warehoused tilt ladder — the
//! whole point of the tilted-time-frame model is that those ladders
//! *are* the retained history, so durability is table stakes. This
//! module serializes everything an [`OnlineEngine`] needs to resume at
//! its last unit boundary into one self-validating binary file:
//!
//! * the last closed window's m-layer tuples (the cube is **rebuilt**
//!   from them on restore, through the same cubing path every backend
//!   and shard count shares — which is what makes the restored cube
//!   bit-identical on every backend),
//! * both tilt-ladder families (m- and o-frames, every slot of every
//!   level), the last unit's alarms, and the lateness machinery: the
//!   reorder buffer's records, per-source watermarks, drop counters,
//!   pending amendments and pending alarm revisions.
//!
//! # File format (version 1)
//!
//! ```text
//! magic   b"RGCK"            4 bytes
//! version u32 LE             (currently 1)
//! length  u64 LE             payload byte count
//! payload length bytes       (see encode_state)
//! check   u64 LE             FNV-1a 64 over the payload
//! ```
//!
//! Every failure mode — missing file, torn write, bit rot, version
//! skew, a checkpoint from a differently-configured engine — surfaces
//! as a typed [`StreamError::Checkpoint`]. Restoration is
//! **all-or-nothing**: the engine is built and populated privately and
//! only handed back once every field decoded; no caller ever observes
//! a half-restored engine.
//!
//! # What is deliberately not captured
//!
//! Cubing-internal counters ([`RunStats`](regcube_core::RunStats)
//! timing/memory figures) and the exception history's *depth* restart
//! from the checkpoint boundary: the history is reseeded with the
//! restored window only, so `ExceptionDiff`s keep working forward, but
//! chronic-exception lookback shortens to the restore point. The
//! queryable state — cube tables, ladders, alarms; everything
//! [`CubeSnapshot::canonical_text`](crate::CubeSnapshot::canonical_text)
//! renders — round-trips bit-identically.

use crate::error::StreamError;
use crate::ingest::Ingestor;
use crate::online::{Alarm, BoxedEngine, EngineConfig, OnlineEngine};
use crate::record::RawRecord;
use crate::Result;
use regcube_core::alarm::{AlarmRevision, LateAmendment};
use regcube_core::engine::CubingEngine;
use regcube_core::MTuple;
use regcube_olap::cell::CellKey;
use regcube_olap::CuboidSpec;
use regcube_regress::Isb;
use regcube_tilt::{TiltFrame, TiltSlot};
use std::collections::BTreeMap;
use std::path::Path;

const MAGIC: &[u8; 4] = b"RGCK";
const VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Serializes the engine's resumable state into checkpoint bytes (the
/// full file image, header and checksum included).
///
/// # Errors
/// [`StreamError::Checkpoint`] when the engine holds a partially
/// accumulated open unit (strict-order mode between boundaries):
/// checkpoints are taken at unit boundaries, where the open
/// accumulation is empty. Watermark-mode engines can checkpoint any
/// time — their in-flight records live in the reorder buffer, which is
/// captured.
pub fn checkpoint_bytes<E: CubingEngine>(engine: &OnlineEngine<E>) -> Result<Vec<u8>> {
    if engine.ingestor.open_cells() > 0 {
        return Err(StreamError::Checkpoint {
            detail: format!(
                "open unit {} holds {} partially accumulated cells; \
                 checkpoint at a unit boundary (close_unit first)",
                engine.ingestor.open_unit(),
                engine.ingestor.open_cells()
            ),
        });
    }
    let payload = encode_state(engine);
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    Ok(out)
}

/// Writes a checkpoint file for `engine` (see [`checkpoint_bytes`]).
/// The file is written to a sibling temporary path and atomically
/// renamed into place, so a crash mid-write can tear the temporary but
/// never the checkpoint itself.
///
/// # Errors
/// [`StreamError::Checkpoint`] for I/O failures or a mid-unit engine.
pub fn write_checkpoint<E: CubingEngine>(
    engine: &OnlineEngine<E>,
    path: impl AsRef<Path>,
) -> Result<()> {
    let path = path.as_ref();
    let bytes = checkpoint_bytes(engine)?;
    let tmp = path.with_extension("rgck-tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| StreamError::Checkpoint {
        detail: format!("writing {}: {e}", tmp.display()),
    })?;
    std::fs::rename(&tmp, path).map_err(|e| StreamError::Checkpoint {
        detail: format!("renaming into {}: {e}", path.display()),
    })
}

/// Restores an engine from checkpoint bytes. `config` must describe
/// the same analysis as the checkpointed engine (schema, layers,
/// policy, tilt spec, ticks per unit, and the same
/// reordering-enabled/disabled choice); backend, shard count, sinks
/// and pools are free to differ — the cube is rebuilt through the
/// configured cubing path, which produces the identical cube on every
/// backend.
///
/// # Errors
/// [`StreamError::Checkpoint`] for torn/corrupt/incompatible bytes
/// (all-or-nothing: no partially restored engine escapes).
pub fn restore_bytes(config: EngineConfig, bytes: &[u8]) -> Result<OnlineEngine<BoxedEngine>> {
    let payload = verify_envelope(bytes)?;
    let saved = decode_state(payload)?;
    let mut engine = config.build()?;
    apply_state(&mut engine, saved)?;
    Ok(engine)
}

/// Restores an engine from a checkpoint file (see [`restore_bytes`]).
///
/// # Errors
/// [`StreamError::Checkpoint`] for a missing/unreadable file or
/// torn/corrupt/incompatible contents.
pub fn restore(config: EngineConfig, path: impl AsRef<Path>) -> Result<OnlineEngine<BoxedEngine>> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| StreamError::Checkpoint {
        detail: format!("reading {}: {e}", path.display()),
    })?;
    restore_bytes(config, &bytes)
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// FNV-1a 64 — dependency-free integrity hash; plenty against torn
/// writes and bit rot (this is not a cryptographic seal).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Validates magic, version, length and checksum; returns the payload.
fn verify_envelope(bytes: &[u8]) -> Result<&[u8]> {
    let fail = |detail: String| StreamError::Checkpoint { detail };
    if bytes.len() < 24 {
        return Err(fail(format!(
            "file too short for a checkpoint header ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[0..4] != MAGIC {
        return Err(fail("bad magic: not a regcube checkpoint".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(fail(format!(
            "unsupported checkpoint version {version} (this build reads {VERSION})"
        )));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let expected_total = 16usize
        .checked_add(len)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| fail("payload length overflows".into()))?;
    if bytes.len() != expected_total {
        return Err(fail(format!(
            "torn checkpoint: header promises {expected_total} bytes, file has {}",
            bytes.len()
        )));
    }
    let payload = &bytes[16..16 + len];
    let stored = u64::from_le_bytes(bytes[16 + len..].try_into().expect("8 bytes"));
    let actual = fnv1a(payload);
    if stored != actual {
        return Err(fail(format!(
            "checksum mismatch: stored {stored:016x}, computed {actual:016x}"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Encoder / decoder primitives
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn opt_i64(&mut self, v: Option<i64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.i64(x);
            }
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn ids(&mut self, ids: &[u32]) {
        self.u64(ids.len() as u64);
        for &id in ids {
            self.u32(id);
        }
    }
    fn isb(&mut self, isb: &Isb) {
        self.i64(isb.start());
        self.i64(isb.end());
        self.f64(isb.base());
        self.f64(isb.slope());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn fail(&self, what: &str) -> StreamError {
        StreamError::Checkpoint {
            detail: format!("truncated payload decoding {what} at offset {}", self.pos),
        }
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.fail(what))?;
        if end > self.buf.len() {
            return Err(self.fail(what));
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }
    fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(i64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn opt_i64(&mut self, what: &str) -> Result<Option<i64>> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.i64(what)?)),
            tag => Err(StreamError::Checkpoint {
                detail: format!("bad option tag {tag} decoding {what}"),
            }),
        }
    }
    /// Bounded count: a corrupt length can't trigger a huge allocation.
    fn count(&mut self, what: &str) -> Result<usize> {
        let n = self.u64(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if n > remaining {
            return Err(StreamError::Checkpoint {
                detail: format!(
                    "implausible count {n} decoding {what}: only {remaining} payload bytes remain"
                ),
            });
        }
        Ok(n)
    }
    fn str(&mut self, what: &str) -> Result<String> {
        let n = self.count(what)?;
        String::from_utf8(self.take(n, what)?.to_vec()).map_err(|_| StreamError::Checkpoint {
            detail: format!("invalid UTF-8 decoding {what}"),
        })
    }
    fn ids(&mut self, what: &str) -> Result<Vec<u32>> {
        let n = self.count(what)?;
        (0..n).map(|_| self.u32(what)).collect()
    }
    fn isb(&mut self, what: &str) -> Result<Isb> {
        let start = self.i64(what)?;
        let end = self.i64(what)?;
        let base = self.f64(what)?;
        let slope = self.f64(what)?;
        Isb::new(start, end, base, slope).map_err(|e| StreamError::Checkpoint {
            detail: format!("invalid ISB decoding {what}: {e}"),
        })
    }
    fn done(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(StreamError::Checkpoint {
                detail: format!(
                    "{} trailing payload bytes after a complete decode",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Engine state <-> payload
// ---------------------------------------------------------------------------

/// The analysis identity a checkpoint belongs to. Two engines with the
/// same fingerprint warehouse interchangeable state; anything else is
/// rejected at restore time instead of silently mis-restoring.
fn fingerprint(
    ingestor: &Ingestor,
    engine_parts: (&regcube_olap::CubeSchema, &CuboidSpec, &CuboidSpec),
    policy: &regcube_core::ExceptionPolicy,
    tilt_spec: &regcube_tilt::TiltSpec,
    ticks_per_unit: usize,
) -> String {
    let (schema, o_layer, m_layer) = engine_parts;
    format!(
        "{schema:?}|{:?}|{o_layer:?}|{m_layer:?}|{policy:?}|{tilt_spec:?}|{ticks_per_unit}",
        ingestor.primitive()
    )
}

fn engine_fingerprint<E: CubingEngine>(engine: &OnlineEngine<E>) -> String {
    fingerprint(
        &engine.ingestor,
        (&engine.schema, &engine.o_layer, &engine.m_layer),
        &engine.policy,
        &engine.tilt_spec,
        engine.ticks_per_unit,
    )
}

fn encode_frame(enc: &mut Enc, frame: &TiltFrame<Isb>) {
    enc.u64(frame.next_unit());
    enc.u64(frame.stats().expired_units);
    let levels = frame.spec().num_levels();
    enc.u64(levels as u64);
    for level in 0..levels {
        let slots = frame.slots(level).expect("level in range");
        enc.u64(slots.len() as u64);
        for slot in slots {
            enc.u64(slot.unit);
            enc.isb(&slot.measure);
        }
    }
}

fn encode_frames(enc: &mut Enc, frames: &regcube_olap::fxhash::FxHashMap<CellKey, TiltFrame<Isb>>) {
    // Sorted for determinism: the same engine state always produces the
    // same checkpoint bytes.
    let mut keys: Vec<&CellKey> = frames.keys().collect();
    keys.sort();
    enc.u64(keys.len() as u64);
    for key in keys {
        enc.ids(key.ids());
        encode_frame(enc, &frames[key]);
    }
}

fn encode_revision(enc: &mut Enc, rev: &AlarmRevision) {
    let kind = match rev {
        AlarmRevision::Retracted { .. } => 0u8,
        AlarmRevision::Raised { .. } => 1,
        AlarmRevision::Rescored { .. } => 2,
    };
    enc.u8(kind);
    let levels: Vec<u32> = rev
        .cuboid()
        .levels()
        .iter()
        .map(|&l| u32::from(l))
        .collect();
    enc.ids(&levels);
    enc.ids(rev.cell().ids());
    enc.u64(rev.unit());
    enc.u64(rev.level() as u64);
    enc.f64(rev.old_score());
    enc.f64(rev.new_score());
}

fn decode_revision(dec: &mut Dec<'_>) -> Result<AlarmRevision> {
    let kind = dec.u8("revision kind")?;
    let cuboid = CuboidSpec::new(
        dec.ids("revision cuboid")?
            .into_iter()
            .map(|l| l as u8)
            .collect(),
    );
    let cell = CellKey::new(dec.ids("revision cell")?);
    let unit = dec.u64("revision unit")?;
    let level = dec.u64("revision level")? as usize;
    let old_score = dec.f64("revision old score")?;
    let new_score = dec.f64("revision new score")?;
    match kind {
        0 => Ok(AlarmRevision::Retracted {
            cuboid,
            cell,
            unit,
            level,
            old_score,
            new_score,
        }),
        1 => Ok(AlarmRevision::Raised {
            cuboid,
            cell,
            unit,
            level,
            old_score,
            new_score,
        }),
        2 => Ok(AlarmRevision::Rescored {
            cuboid,
            cell,
            unit,
            level,
            old_score,
            new_score,
        }),
        tag => Err(StreamError::Checkpoint {
            detail: format!("unknown revision kind {tag}"),
        }),
    }
}

/// Everything [`apply_state`] needs, fully decoded before any engine is
/// touched (the all-or-nothing guarantee).
struct SavedState {
    fingerprint: String,
    computed: bool,
    units_closed: u64,
    last_closed_unit: Option<i64>,
    open_unit: i64,
    m_tuples: Vec<(CellKey, Isb)>,
    frames: Vec<(CellKey, FrameParts)>,
    o_frames: Vec<(CellKey, FrameParts)>,
    last_alarms: Vec<Alarm>,
    reorder: Option<SavedReorder>,
    pending_amendments: Vec<LateAmendment>,
    pending_revisions: Vec<AlarmRevision>,
    late_amended_total: u64,
}

struct FrameParts {
    next_unit: u64,
    expired_units: u64,
    levels: Vec<Vec<TiltSlot<Isb>>>,
}

struct SavedReorder {
    max_seen_unit: Option<i64>,
    sources: Vec<(u32, i64)>,
    dropped_total: u64,
    dropped_since_report: u64,
    sources_evicted: u64,
    watermark_held_units: u64,
    buffered: Vec<(i64, Vec<RawRecord>)>,
}

fn encode_state<E: CubingEngine>(engine: &OnlineEngine<E>) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.str(&engine_fingerprint(engine));
    enc.u8(u8::from(engine.computed));
    enc.u64(engine.units_closed);
    enc.opt_i64(engine.last_closed_unit);
    enc.i64(engine.ingestor.open_unit());

    // The last window's m-layer tuples, sorted: the cube rebuild seed.
    let mut tuples: Vec<(&CellKey, &Isb)> = if engine.computed {
        engine.cubing.result().m_table().iter().collect()
    } else {
        Vec::new()
    };
    tuples.sort_by(|a, b| a.0.cmp(b.0));
    enc.u64(tuples.len() as u64);
    for (key, isb) in tuples {
        enc.ids(key.ids());
        enc.isb(isb);
    }

    encode_frames(&mut enc, &engine.frames);
    encode_frames(&mut enc, &engine.o_frames);

    enc.u64(engine.last_alarms.len() as u64);
    for alarm in &engine.last_alarms {
        enc.ids(alarm.key.ids());
        enc.isb(&alarm.measure);
        enc.f64(alarm.score);
        enc.f64(alarm.threshold);
    }

    match &engine.reorder {
        None => enc.u8(0),
        Some(st) => {
            enc.u8(1);
            enc.opt_i64(st.max_seen_unit);
            enc.u64(st.sources.len() as u64);
            for (&source, &mark) in &st.sources {
                enc.u32(source);
                enc.i64(mark);
            }
            enc.u64(st.dropped_total);
            enc.u64(st.dropped_since_report);
            enc.u64(st.sources_evicted);
            enc.u64(st.watermark_held_units);
            enc.u64(st.units.len() as u64);
            for (&unit, records) in &st.units {
                enc.i64(unit);
                enc.u64(records.len() as u64);
                for r in records {
                    enc.ids(&r.ids);
                    enc.i64(r.tick);
                    enc.f64(r.value);
                    enc.u32(r.source);
                }
            }
        }
    }

    enc.u64(engine.pending_amendments.len() as u64);
    for a in &engine.pending_amendments {
        enc.ids(a.m_cell.ids());
        enc.ids(a.o_cell.ids());
        enc.u64(a.unit);
        enc.i64(a.tick);
        enc.f64(a.delta);
        enc.u64(a.m_level as u64);
        enc.u64(a.o_level as u64);
    }

    enc.u64(engine.pending_revisions.len() as u64);
    for rev in &engine.pending_revisions {
        encode_revision(&mut enc, rev);
    }
    enc.u64(engine.late_amended_total);
    enc.buf
}

fn decode_state(payload: &[u8]) -> Result<SavedState> {
    let mut dec = Dec::new(payload);
    let fingerprint = dec.str("fingerprint")?;
    let computed = match dec.u8("computed flag")? {
        0 => false,
        1 => true,
        tag => {
            return Err(StreamError::Checkpoint {
                detail: format!("bad computed flag {tag}"),
            })
        }
    };
    let units_closed = dec.u64("units_closed")?;
    let last_closed_unit = dec.opt_i64("last_closed_unit")?;
    let open_unit = dec.i64("open_unit")?;

    let n = dec.count("m-tuple count")?;
    let mut m_tuples = Vec::with_capacity(n);
    for _ in 0..n {
        let key = CellKey::new(dec.ids("m-tuple key")?);
        let isb = dec.isb("m-tuple measure")?;
        m_tuples.push((key, isb));
    }

    let decode_frames = |dec: &mut Dec<'_>, what: &str| -> Result<Vec<(CellKey, FrameParts)>> {
        let n = dec.count(what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let key = CellKey::new(dec.ids("frame key")?);
            let next_unit = dec.u64("frame next_unit")?;
            let expired_units = dec.u64("frame expired_units")?;
            let num_levels = dec.count("frame level count")?;
            let mut levels = Vec::with_capacity(num_levels);
            for _ in 0..num_levels {
                let slots = dec.count("frame slot count")?;
                let mut level = Vec::with_capacity(slots);
                for _ in 0..slots {
                    let unit = dec.u64("slot unit")?;
                    let measure = dec.isb("slot measure")?;
                    level.push(TiltSlot { unit, measure });
                }
                levels.push(level);
            }
            out.push((
                key,
                FrameParts {
                    next_unit,
                    expired_units,
                    levels,
                },
            ));
        }
        Ok(out)
    };
    let frames = decode_frames(&mut dec, "m-frame count")?;
    let o_frames = decode_frames(&mut dec, "o-frame count")?;

    let n = dec.count("alarm count")?;
    let mut last_alarms = Vec::with_capacity(n);
    for _ in 0..n {
        let key = CellKey::new(dec.ids("alarm key")?);
        let measure = dec.isb("alarm measure")?;
        let score = dec.f64("alarm score")?;
        let threshold = dec.f64("alarm threshold")?;
        last_alarms.push(Alarm {
            key,
            measure,
            score,
            threshold,
        });
    }

    let reorder = match dec.u8("reorder flag")? {
        0 => None,
        1 => {
            let max_seen_unit = dec.opt_i64("reorder max_seen")?;
            let n = dec.count("source count")?;
            let mut sources = Vec::with_capacity(n);
            for _ in 0..n {
                let source = dec.u32("source id")?;
                let mark = dec.i64("source mark")?;
                sources.push((source, mark));
            }
            let dropped_total = dec.u64("dropped_total")?;
            let dropped_since_report = dec.u64("dropped_since_report")?;
            let sources_evicted = dec.u64("sources_evicted")?;
            let watermark_held_units = dec.u64("watermark_held_units")?;
            let n = dec.count("buffered unit count")?;
            let mut buffered = Vec::with_capacity(n);
            for _ in 0..n {
                let unit = dec.i64("buffered unit")?;
                let m = dec.count("buffered record count")?;
                let mut records = Vec::with_capacity(m);
                for _ in 0..m {
                    let ids = dec.ids("record ids")?;
                    let tick = dec.i64("record tick")?;
                    let value = dec.f64("record value")?;
                    let source = dec.u32("record source")?;
                    records.push(RawRecord::new(ids, tick, value).with_source(source));
                }
                buffered.push((unit, records));
            }
            Some(SavedReorder {
                max_seen_unit,
                sources,
                dropped_total,
                dropped_since_report,
                sources_evicted,
                watermark_held_units,
                buffered,
            })
        }
        tag => {
            return Err(StreamError::Checkpoint {
                detail: format!("bad reorder flag {tag}"),
            })
        }
    };

    let n = dec.count("amendment count")?;
    let mut pending_amendments = Vec::with_capacity(n);
    for _ in 0..n {
        let m_cell = CellKey::new(dec.ids("amendment m-cell")?);
        let o_cell = CellKey::new(dec.ids("amendment o-cell")?);
        let unit = dec.u64("amendment unit")?;
        let tick = dec.i64("amendment tick")?;
        let delta = dec.f64("amendment delta")?;
        let m_level = dec.u64("amendment m-level")? as usize;
        let o_level = dec.u64("amendment o-level")? as usize;
        pending_amendments.push(LateAmendment {
            m_cell,
            o_cell,
            unit,
            tick,
            delta,
            m_level,
            o_level,
        });
    }

    let n = dec.count("revision count")?;
    let mut pending_revisions = Vec::with_capacity(n);
    for _ in 0..n {
        pending_revisions.push(decode_revision(&mut dec)?);
    }
    let late_amended_total = dec.u64("late_amended_total")?;
    dec.done()?;
    Ok(SavedState {
        fingerprint,
        computed,
        units_closed,
        last_closed_unit,
        open_unit,
        m_tuples,
        frames,
        o_frames,
        last_alarms,
        reorder,
        pending_amendments,
        pending_revisions,
        late_amended_total,
    })
}

/// Populates a freshly built engine from decoded state. Called with a
/// private engine: on error the engine is dropped with the `?`, so no
/// partial state escapes.
fn apply_state(engine: &mut OnlineEngine<BoxedEngine>, saved: SavedState) -> Result<()> {
    let own = engine_fingerprint(engine);
    if own != saved.fingerprint {
        return Err(StreamError::Checkpoint {
            detail: format!(
                "configuration mismatch: checkpoint was taken from a differently-configured \
                 engine (checkpoint `{}`, this config `{own}`)",
                saved.fingerprint
            ),
        });
    }
    if engine.reorder.is_some() != saved.reorder.is_some() {
        return Err(StreamError::Checkpoint {
            detail: format!(
                "reordering mismatch: checkpoint {} the watermark stage, this config {} it",
                if saved.reorder.is_some() {
                    "enables"
                } else {
                    "disables"
                },
                if engine.reorder.is_some() {
                    "enables"
                } else {
                    "disables"
                },
            ),
        });
    }

    // Rebuild the cube by re-cubing the saved window's m-tuples through
    // the configured path: deterministic and backend/shard agnostic.
    if saved.computed {
        let tuples: Vec<MTuple> = saved
            .m_tuples
            .iter()
            .map(|(k, isb)| MTuple::new(k.ids().to_vec(), *isb))
            .collect();
        engine
            .cubing
            .ingest_unit(&tuples)
            .map_err(StreamError::from)?;
        engine.computed = true;
        let result = engine.cubing.result();
        // Reseed the o-layer reference and a depth-1 exception history
        // so the next close diffs against the restored window.
        engine.prev_o_layer = result
            .o_table()
            .iter()
            .map(|(k, m)| (k.clone(), *m))
            .collect();
        let _ = engine.history.record(result);
    }

    let spec = engine.tilt_spec.clone();
    let build_family = |entries: Vec<(CellKey, FrameParts)>| -> Result<_> {
        let mut out = regcube_olap::fxhash::FxHashMap::default();
        for (key, parts) in entries {
            let frame = TiltFrame::from_parts(
                spec.clone(),
                parts.levels,
                parts.next_unit,
                parts.expired_units,
            )
            .map_err(|e| StreamError::Checkpoint {
                detail: format!("invalid tilt frame in checkpoint: {e}"),
            })?;
            out.insert(key, frame);
        }
        Ok(out)
    };
    engine.frames = build_family(saved.frames)?;
    engine.o_frames = build_family(saved.o_frames)?;

    engine.ingestor.set_open_unit(saved.open_unit);
    engine.units_closed = saved.units_closed;
    engine.last_closed_unit = saved.last_closed_unit;
    engine.last_alarms = saved.last_alarms;
    engine.pending_amendments = saved.pending_amendments;
    engine.pending_revisions = saved.pending_revisions;
    engine.late_amended_total = saved.late_amended_total;

    if let (Some(st), Some(saved_st)) = (engine.reorder.as_mut(), saved.reorder) {
        st.max_seen_unit = saved_st.max_seen_unit;
        st.sources = saved_st.sources.into_iter().collect();
        st.dropped_total = saved_st.dropped_total;
        st.dropped_since_report = saved_st.dropped_since_report;
        st.sources_evicted = saved_st.sources_evicted;
        st.watermark_held_units = saved_st.watermark_held_units;
        st.units = saved_st
            .buffered
            .into_iter()
            .collect::<BTreeMap<i64, Vec<RawRecord>>>();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn envelope_rejects_torn_and_corrupt_bytes() {
        let payload = b"hello payload".to_vec();
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&VERSION.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&payload);
        file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        assert_eq!(verify_envelope(&file).unwrap(), payload.as_slice());

        // Too short / truncated at every prefix length.
        for cut in 0..file.len() {
            assert!(verify_envelope(&file[..cut]).is_err(), "cut at {cut}");
        }
        // Flip any byte: either the envelope or the checksum notices.
        for i in 0..file.len() {
            let mut bad = file.clone();
            bad[i] ^= 0x40;
            assert!(verify_envelope(&bad).is_err(), "flip at {i}");
        }
        // Future version.
        let mut future = file.clone();
        future[4..8].copy_from_slice(&2u32.to_le_bytes());
        let err = verify_envelope(&future).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn decoder_counts_are_bounded_by_remaining_bytes() {
        let mut enc = Enc::new();
        enc.u64(u64::MAX); // implausible count
        let mut dec = Dec::new(&enc.buf);
        assert!(dec.count("test").is_err());
    }
}
