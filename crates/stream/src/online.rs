//! The online engine: one cube recomputation per m-layer time unit,
//! per-cell tilt frames, and o-layer alarms (paper Sections 4.3 / 4.5).

use crate::error::StreamError;
use crate::ingest::Ingestor;
use crate::record::RawRecord;
use crate::Result;
use regcube_core::alarm::{AlarmContext, SharedSink, SinkError, SinkSet};
use regcube_core::arena::ArenaCubingEngine;
use regcube_core::columnar::ColumnarCubingEngine;
use regcube_core::drill::{drill_children, drill_descendants, DrillHit};
use regcube_core::engine::{Backend, CubingEngine, MoCubingEngine, PopularPathEngine, UnitDelta};
use regcube_core::history::{CubeHistory, ExceptionDiff};
use regcube_core::result::Algorithm;
use regcube_core::shard::ShardedEngine;
use regcube_core::{CoreError, CriticalLayers, CubeResult, ExceptionPolicy};
use regcube_olap::cell::CellKey;
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;
use regcube_tilt::{TiltFrame, TiltSpec};
use std::time::{Duration, Instant};

/// The type-erased cubing engine [`EngineConfig::build`] selects at
/// runtime from [`EngineConfig::algorithm`].
pub type BoxedEngine = Box<dyn CubingEngine + Send>;

/// One o-layer alarm raised at a unit close.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// The exceptional o-layer cell.
    pub key: CellKey,
    /// Its regression over the closed unit.
    pub measure: Isb,
    /// The score that fired (own slope or slot delta, per policy).
    pub score: f64,
    /// The threshold it passed.
    pub threshold: f64,
}

/// The report of one closed m-layer unit.
#[derive(Debug, Clone)]
pub struct UnitReport {
    /// The closed unit index.
    pub unit: i64,
    /// Distinct m-cells active in the unit.
    pub m_cells: usize,
    /// Alarms raised at the o-layer, hottest first.
    pub alarms: Vec<Alarm>,
    /// Exception cells retained between the layers.
    pub exception_cells: u64,
    /// Time spent recomputing the cube.
    pub recompute_time: Duration,
    /// Exception changes against the previous unit (`None` for the first
    /// computed unit): fresh alerts, recoveries, persisting conditions.
    pub diff: Option<ExceptionDiff>,
    /// What the cubing engine reported for the unit's batch (`None` for
    /// an empty unit, which never reaches the engine).
    pub cube_delta: Option<UnitDelta>,
    /// Failures from alarm sinks consuming the unit's delta. A failing
    /// sink never fails the unit — the cube is already updated when
    /// sinks run, so each error is surfaced exactly once, here.
    pub sink_errors: Vec<SinkError>,
    /// Off-path cuboids the popular-path drill re-aggregated (or
    /// retracted) for this unit, summed across shards. Zero for
    /// Algorithm 1 backends and for empty units. See
    /// [`RunStats::drill_replayed_cuboids`](regcube_core::RunStats).
    pub drill_replayed_cuboids: u64,
    /// Off-path cuboids the popular-path engine's step 3 left
    /// untouched for this unit (retained output reused verbatim, or no
    /// drill candidates at all), summed across shards — the work the
    /// frontier-dirty replay saved. See
    /// [`RunStats::drill_skipped_cuboids`](regcube_core::RunStats).
    pub drill_skipped_cuboids: u64,
    /// Source rows the unit's cubing folded through the chunked kernel
    /// layer (blocked LUT projection + run folds), summed across
    /// shards. Zero for row backends, empty units, and when the scalar
    /// fallback is forced. See
    /// [`RunStats::rows_folded_simd`](regcube_core::RunStats).
    pub rows_folded_simd: u64,
    /// Source rows the unit's cubing folded through the scalar per-row
    /// path, summed across shards. For the columnar backend
    /// `rows_folded_simd + rows_folded_scalar` equals the unit's total
    /// folded rows. See
    /// [`RunStats::rows_folded_scalar`](regcube_core::RunStats).
    pub rows_folded_scalar: u64,
    /// Cell keys the arena backend interned for the unit, summed across
    /// shards. Zero for the row and columnar backends and for empty
    /// units. See [`RunStats::keys_interned`](regcube_core::RunStats).
    pub keys_interned: u64,
    /// Whole arena epochs the unit reclaimed in O(1), summed across
    /// shards (arena backend only). See
    /// [`RunStats::epochs_reclaimed`](regcube_core::RunStats).
    pub epochs_reclaimed: u64,
    /// Heap allocations the arena layer performed for the unit, summed
    /// across shards — zero in steady state once the working set is
    /// built. See
    /// [`RunStats::arena_alloc_calls`](regcube_core::RunStats).
    pub arena_alloc_calls: u64,
    /// Bytes the arena working set retains across windows, summed
    /// across shards (arena backend only). See
    /// [`RunStats::arena_bytes_retained`](regcube_core::RunStats).
    pub arena_bytes_retained: usize,
}

/// Configuration of an [`OnlineEngine`], built fluently:
///
/// ```
/// use regcube_stream::online::EngineConfig;
/// use regcube_core::ExceptionPolicy;
/// use regcube_olap::{CubeSchema, CuboidSpec};
///
/// let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
/// let config = EngineConfig::new(
///     schema,
///     CuboidSpec::new(vec![0, 0]),   // o-layer
///     CuboidSpec::new(vec![2, 2]),   // m-layer
/// )
/// .with_policy(ExceptionPolicy::slope_threshold(1.0))
/// .with_ticks_per_unit(15);
/// assert!(config.build().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Cube schema (standard dimensions).
    pub schema: CubeSchema,
    /// Primitive stream layer the raw records arrive at; defaults to the
    /// m-layer (pre-aggregated input).
    pub primitive: CuboidSpec,
    /// Observation layer.
    pub o_layer: CuboidSpec,
    /// Minimal interesting layer.
    pub m_layer: CuboidSpec,
    /// Exception policy (threshold + reference mode); defaults to a
    /// cube-wide threshold of 1.
    pub policy: ExceptionPolicy,
    /// Tilt frame shape; defaults to the paper's Figure 4 frame.
    pub tilt_spec: TiltSpec,
    /// Raw ticks per m-layer time unit; defaults to 15 (minutes/quarter).
    pub ticks_per_unit: usize,
    /// Cubing algorithm; defaults to m/o-cubing.
    pub algorithm: Algorithm,
    /// Physical table layout of the cubing backend; defaults to the row
    /// (hash-map) layout. [`Backend::Columnar`] selects the
    /// struct-of-arrays roll-up of [`regcube_core::columnar`] and
    /// [`Backend::Arena`] the interned-key arena tables of
    /// [`regcube_core::arena`] (both Algorithm 1 only). A row-default
    /// configuration running Algorithm 1 is upgraded at
    /// [`build`](Self::build) time by [`Backend::from_env`]
    /// (`REGCUBE_ARENA_BACKEND=1` — CI's whole-workspace arena pass).
    pub backend: Backend,
    /// Number of cubing shards (m-layer hash partitions cubed in
    /// parallel and merged via Theorem 3.2); defaults to 1 (unsharded).
    pub shards: usize,
    /// Alarm sinks receiving every unit's [`UnitDelta`] (merged and
    /// sorted — the identical stream at every shard count); defaults to
    /// none. Sinks are shared (`Arc<Mutex<_>>`), so cloning the config
    /// shares them.
    pub sinks: SinkSet,
}

impl EngineConfig {
    /// Starts a configuration with paper-style defaults (see field docs).
    pub fn new(schema: CubeSchema, o_layer: CuboidSpec, m_layer: CuboidSpec) -> Self {
        EngineConfig {
            schema,
            primitive: m_layer.clone(),
            o_layer,
            m_layer,
            policy: ExceptionPolicy::slope_threshold(1.0),
            tilt_spec: TiltSpec::paper_figure4(),
            ticks_per_unit: 15,
            algorithm: Algorithm::MoCubing,
            backend: Backend::Row,
            shards: 1,
            sinks: SinkSet::new(),
        }
    }

    /// Sets the primitive layer raw records arrive at.
    #[must_use]
    pub fn with_primitive(mut self, primitive: CuboidSpec) -> Self {
        self.primitive = primitive;
        self
    }

    /// Sets the exception policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ExceptionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the tilt frame specification.
    #[must_use]
    pub fn with_tilt(mut self, spec: TiltSpec) -> Self {
        self.tilt_spec = spec;
        self
    }

    /// Sets the number of raw ticks per m-layer unit.
    #[must_use]
    pub fn with_ticks_per_unit(mut self, ticks: usize) -> Self {
        self.ticks_per_unit = ticks;
        self
    }

    /// Sets the cubing algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the physical table layout of the cubing backend. The
    /// columnar and arena backends implement Algorithm 1 (m/o-cubing)
    /// only; [`build`](Self::build) rejects `Columnar` or `Arena`
    /// together with [`Algorithm::PopularPath`]. Every backend produces
    /// the same cube at every shard count — see the README's "Choosing
    /// a backend".
    ///
    /// ```
    /// use regcube_stream::online::EngineConfig;
    /// use regcube_core::Backend;
    /// use regcube_olap::{CubeSchema, CuboidSpec};
    ///
    /// let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    /// let config = EngineConfig::new(
    ///     schema,
    ///     CuboidSpec::new(vec![0, 0]),
    ///     CuboidSpec::new(vec![2, 2]),
    /// )
    /// .with_backend(Backend::Columnar);
    /// assert!(config.build().is_ok());
    /// ```
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the number of cubing shards (clamped to at least 1). With
    /// `n > 1` every build path routes cubing through a
    /// [`ShardedEngine`]: each unit's m-layer batch is hash-partitioned
    /// across `n` inner engines, cubed in parallel on a worker pool and
    /// merged via Theorem 3.2 linearity. One shard is the unsharded
    /// fast path. See `regcube_core::shard` for the exactness contract
    /// and the README for choosing a shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Registers alarm sinks: every closed non-empty unit's
    /// [`UnitDelta`] is fanned out to them (in registration order)
    /// right after the cube is updated, together with an
    /// [`AlarmContext`] for score lookups. Wrap each sink with
    /// [`regcube_core::alarm::shared`] and keep a clone to query it
    /// while the engine runs. See [`regcube_core::alarm`] for the
    /// ready-made sinks (log, escalator, dashboard).
    ///
    /// ```
    /// use regcube_stream::online::EngineConfig;
    /// use regcube_core::alarm::{self, AlarmLog, DashboardSummary, SharedSink};
    /// use regcube_olap::{CubeSchema, CuboidSpec};
    ///
    /// let log = alarm::shared(AlarmLog::new(128));
    /// let dash = alarm::shared(DashboardSummary::new());
    /// let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    /// let config = EngineConfig::new(
    ///     schema,
    ///     CuboidSpec::new(vec![0, 0]),
    ///     CuboidSpec::new(vec![2, 2]),
    /// )
    /// .with_sinks([log.clone() as SharedSink, dash.clone() as SharedSink]);
    /// assert!(config.build().is_ok());
    /// assert_eq!(dash.lock().unwrap().active_cells(), 0);
    /// ```
    #[must_use]
    pub fn with_sinks(mut self, sinks: impl IntoIterator<Item = SharedSink>) -> Self {
        for sink in sinks {
            self.sinks.push(sink);
        }
        self
    }

    /// Registers one alarm sink (see [`with_sinks`](Self::with_sinks)).
    #[must_use]
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Builds the engine, selecting the cubing strategy at runtime from
    /// [`algorithm`](Self::algorithm) and [`backend`](Self::backend)
    /// (type-erased behind [`BoxedEngine`]); a [`shards`](Self::shards)
    /// count above 1 wraps the strategy in a [`ShardedEngine`].
    /// Row-default Algorithm 1 configurations honor
    /// [`Backend::from_env`] (`REGCUBE_ARENA_BACKEND=1` forces the
    /// arena layout process-wide).
    ///
    /// # Errors
    /// [`StreamError::BadConfig`] for [`Backend::Columnar`] or
    /// [`Backend::Arena`] combined with [`Algorithm::PopularPath`]
    /// (those backends implement Algorithm 1 only); otherwise
    /// configuration validation from the ingestor and cube substrates.
    pub fn build(self) -> Result<OnlineEngine<BoxedEngine>> {
        let algorithm = self.algorithm;
        let mut backend = self.backend;
        let shards = self.shards;
        // The env override upgrades row-default Algorithm 1 configs only:
        // explicit backend choices and popular-path runs keep their
        // layout (the arena implements Algorithm 1, not drilling).
        if backend == Backend::Row && algorithm == Algorithm::MoCubing {
            backend = Backend::from_env();
        }
        if algorithm == Algorithm::PopularPath && backend != Backend::Row {
            return Err(StreamError::BadConfig {
                detail: format!(
                    "the {backend:?} backend implements Algorithm 1 (MoCubing) only; \
                     use Backend::Row with Algorithm::PopularPath"
                ),
            });
        }
        self.build_with(
            move |schema, layers, policy| match (algorithm, backend, shards) {
                (Algorithm::MoCubing, Backend::Row, 1) => {
                    MoCubingEngine::transient(schema, layers, policy)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Row, n) => {
                    ShardedEngine::mo_cubing(schema, layers, policy, n)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Columnar, 1) => {
                    ColumnarCubingEngine::new(schema, layers, policy)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Columnar, n) => {
                    ShardedEngine::columnar(schema, layers, policy, n)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Arena, 1) => {
                    ArenaCubingEngine::new(schema, layers, policy)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Arena, n) => {
                    ShardedEngine::arena(schema, layers, policy, n)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::PopularPath, _, 1) => {
                    PopularPathEngine::new(schema, layers, policy, None)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::PopularPath, _, n) => {
                    ShardedEngine::popular_path(schema, layers, policy, n)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
            },
        )
    }

    /// Builds a statically-typed engine running the columnar backend
    /// ([`ColumnarCubingEngine`]) across [`shards`](Self::shards)
    /// partitions (a single shard is an exact passthrough).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_columnar(self) -> Result<OnlineEngine<ShardedEngine<ColumnarCubingEngine>>> {
        let shards = self.shards;
        self.build_with(move |schema, layers, policy| {
            ShardedEngine::columnar(schema, layers, policy, shards)
        })
    }

    /// Builds a statically-typed engine running the arena backend
    /// ([`ArenaCubingEngine`]) across [`shards`](Self::shards)
    /// partitions (a single shard is an exact passthrough).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_arena(self) -> Result<OnlineEngine<ShardedEngine<ArenaCubingEngine>>> {
        let shards = self.shards;
        self.build_with(move |schema, layers, policy| {
            ShardedEngine::arena(schema, layers, policy, shards)
        })
    }

    /// Builds a statically-typed engine running Algorithm 1 across
    /// [`shards`](Self::shards) partitions (a single shard is an exact
    /// passthrough to one transient [`MoCubingEngine`], so the default
    /// configuration behaves as before the sharding refactor).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_mo(self) -> Result<OnlineEngine<ShardedEngine<MoCubingEngine>>> {
        let shards = self.shards;
        self.build_with(move |schema, layers, policy| {
            ShardedEngine::mo_cubing(schema, layers, policy, shards)
        })
    }

    /// Builds a statically-typed engine running Algorithm 2 with the
    /// default popular path across [`shards`](Self::shards) partitions
    /// (a single shard is an exact passthrough).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_popular_path(self) -> Result<OnlineEngine<ShardedEngine<PopularPathEngine>>> {
        let shards = self.shards;
        self.build_with(move |schema, layers, policy| {
            ShardedEngine::popular_path(schema, layers, policy, shards)
        })
    }

    /// Builds an engine around any [`CubingEngine`] the caller
    /// constructs — the seam for custom (sharded, instrumented, …)
    /// cubing backends.
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_with<E: CubingEngine>(
        self,
        make: impl FnOnce(CubeSchema, CriticalLayers, ExceptionPolicy) -> regcube_core::Result<E>,
    ) -> Result<OnlineEngine<E>> {
        let EngineConfig {
            schema,
            primitive,
            o_layer,
            m_layer,
            policy,
            tilt_spec,
            ticks_per_unit,
            algorithm: _,
            backend: _,
            shards: _,
            sinks,
        } = self;
        let ingestor = Ingestor::new(schema.clone(), primitive, m_layer.clone(), ticks_per_unit)?;
        let layers = CriticalLayers::new(&schema, o_layer, m_layer).map_err(StreamError::from)?;
        let cubing = make(schema.clone(), layers, policy).map_err(StreamError::from)?;
        Ok(OnlineEngine {
            ingestor,
            schema,
            cubing,
            computed: false,
            tilt_spec,
            frames: FxHashMap::default(),
            o_frames: FxHashMap::default(),
            prev_o_layer: FxHashMap::default(),
            history: CubeHistory::new(16),
            ticks_per_unit,
            units_closed: 0,
            sinks,
        })
    }
}

/// The online analysis engine, generic over the cubing strategy `E`.
///
/// Feed raw records with [`ingest`](Self::ingest); call
/// [`close_unit`](Self::close_unit) at every m-layer time-unit boundary
/// (e.g. every quarter of an hour). Each close:
///
/// 1. rolls the unit's records up to m-layer ISB tuples,
/// 2. pushes every cell's unit ISB into its tilt frame (absent cells get
///    a zero-usage fill so frames stay contiguous),
/// 3. feeds the unit's tuples to the [`CubingEngine`] (which opens a new
///    cube unit for the new window), and
/// 4. raises alarms for exceptional o-layer cells, scoring with the
///    policy's [`RefMode`](regcube_core::RefMode) against the previous
///    unit's o-layer.
///
/// `E` defaults to the runtime-selected [`BoxedEngine`] that
/// [`EngineConfig::build`] produces; [`EngineConfig::build_with`] plugs
/// in any other [`CubingEngine`] implementation statically.
#[derive(Debug)]
pub struct OnlineEngine<E: CubingEngine = BoxedEngine> {
    ingestor: Ingestor,
    schema: CubeSchema,
    cubing: E,
    /// Whether at least one non-empty unit reached the cubing engine.
    computed: bool,
    tilt_spec: TiltSpec,
    /// Per-m-cell tilt frames (the warehoused stream history).
    frames: FxHashMap<CellKey, TiltFrame<Isb>>,
    /// Per-o-cell tilt frames — "the cuboids at the o-layer should be
    /// computed dynamically according to the tilt time frame model as
    /// well" (Example 4): the observation deck at every granularity.
    o_frames: FxHashMap<CellKey, TiltFrame<Isb>>,
    prev_o_layer: FxHashMap<CellKey, Isb>,
    history: CubeHistory,
    ticks_per_unit: usize,
    units_closed: u64,
    /// Alarm sinks receiving the merged, sorted per-unit delta.
    sinks: SinkSet,
}

impl OnlineEngine {
    /// Creates a runtime-configured engine (see [`EngineConfig::build`]).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn new(config: EngineConfig) -> Result<Self> {
        config.build()
    }
}

impl<E: CubingEngine> OnlineEngine<E> {
    /// Ingests one raw record into the open unit.
    ///
    /// # Errors
    /// See [`Ingestor::ingest`].
    pub fn ingest(&mut self, record: &RawRecord) -> Result<()> {
        self.ingestor.ingest(record)
    }

    /// The currently open unit index.
    #[inline]
    pub fn open_unit(&self) -> i64 {
        self.ingestor.open_unit()
    }

    /// Units closed so far.
    #[inline]
    pub fn units_closed(&self) -> u64 {
        self.units_closed
    }

    /// The per-cell tilt frame of an m-layer cell, if the cell has ever
    /// been active.
    pub fn tilt_frame(&self, key: &CellKey) -> Option<&TiltFrame<Isb>> {
        self.frames.get(key)
    }

    /// The most recent cube result.
    ///
    /// # Errors
    /// [`StreamError::Core`] before the first non-empty unit close.
    pub fn cube(&self) -> Result<&CubeResult> {
        if !self.computed {
            return Err(StreamError::from(CoreError::NotMaterialized {
                detail: "no unit with data has been closed yet".into(),
            }));
        }
        Ok(self.cubing.result())
    }

    /// The cubing strategy driving the cube (e.g. to read its
    /// [`stats`](CubingEngine::stats)).
    pub fn cubing(&self) -> &E {
        &self.cubing
    }

    /// Registers an alarm sink after construction (the fluent path is
    /// [`EngineConfig::with_sinks`]). The sink starts receiving deltas
    /// with the next closed non-empty unit.
    pub fn add_sink(&mut self, sink: SharedSink) {
        self.sinks.push(sink);
    }

    /// Number of registered alarm sinks.
    pub fn sink_count(&self) -> usize {
        self.sinks.len()
    }

    /// Closes the open unit and performs the per-unit pipeline.
    ///
    /// # Errors
    /// Propagates substrate failures; an empty unit (no records at all)
    /// yields a report with no alarms and leaves the cube untouched.
    pub fn close_unit(&mut self) -> Result<UnitReport> {
        let (unit, window) = (self.ingestor.open_unit(), self.ingestor.open_window());
        let (_, cells) = self.ingestor.close_unit()?;
        self.units_closed += 1;

        // Tilt maintenance for the m-layer: active cells push their unit
        // ISB; known but silent cells push a zero-usage fill.
        push_unit_into_frames(
            &mut self.frames,
            &self.tilt_spec,
            &cells,
            unit,
            window,
            self.ticks_per_unit,
        )?;

        if cells.is_empty() {
            return Ok(UnitReport {
                unit,
                m_cells: 0,
                alarms: Vec::new(),
                exception_cells: 0,
                recompute_time: Duration::ZERO,
                diff: None,
                cube_delta: None,
                sink_errors: Vec::new(),
                drill_replayed_cuboids: 0,
                drill_skipped_cuboids: 0,
                rows_folded_simd: 0,
                rows_folded_scalar: 0,
                keys_interned: 0,
                epochs_reclaimed: 0,
                arena_alloc_calls: 0,
                arena_bytes_retained: 0,
            });
        }

        // The unit's tuples open a new cube unit in the engine (their
        // window differs from the previous unit's).
        let tuples = Ingestor::to_mtuples(&cells);
        let started = Instant::now();
        let mut delta = self
            .cubing
            .ingest_unit(&tuples)
            .map_err(StreamError::from)?;
        // The built-in engines guarantee sorted deltas (the trait's
        // sorted-delta contract) and `sort_cells` skips after one O(n)
        // verification; only foreign `CubingEngine` backends that
        // violate the contract pay the sort before sinks observe the
        // delta.
        delta.sort_cells();
        self.computed = true;
        let recompute_time = started.elapsed();

        // O-layer alarms with the policy's reference mode.
        let result = self.cubing.result();
        let policy = result.policy().clone();
        let o_layer = result.layers().o_layer().clone();
        let threshold = policy.threshold_for(&o_layer);
        let mut alarms = Vec::new();
        let mut new_prev = FxHashMap::default();
        for (key, measure) in result.o_table() {
            let prev = self.prev_o_layer.get(key);
            let score = policy.ref_mode().score(measure, prev);
            if score >= threshold {
                alarms.push(Alarm {
                    key: key.clone(),
                    measure: *measure,
                    score,
                    threshold,
                });
            }
            new_prev.insert(key.clone(), *measure);
        }
        self.prev_o_layer = new_prev;
        alarms.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.key.cmp(&b.key))
        });

        let diff = self.history.record(result);

        // Fan the unit's delta out to the alarm sinks. Sinks see the
        // post-batch cube; their failures are collected, never allowed
        // to fail the unit (the cube is already updated).
        let sink_errors = if self.sinks.is_empty() {
            Vec::new()
        } else {
            self.sinks
                .dispatch(&delta, &AlarmContext::new(result, &delta))
        };

        // O-layer tilt frames: the observation deck at every granularity.
        let o_cells: Vec<(CellKey, Isb)> = result
            .o_table()
            .iter()
            .map(|(k, m)| (k.clone(), *m))
            .collect();
        let exception_cells = result.total_exception_cells();
        push_unit_into_frames(
            &mut self.o_frames,
            &self.tilt_spec,
            &o_cells,
            unit,
            window,
            self.ticks_per_unit,
        )?;

        let drill_stats = self.cubing.stats();
        Ok(UnitReport {
            unit,
            m_cells: cells.len(),
            alarms,
            exception_cells,
            recompute_time,
            diff,
            cube_delta: Some(delta),
            sink_errors,
            drill_replayed_cuboids: drill_stats.drill_replayed_cuboids,
            drill_skipped_cuboids: drill_stats.drill_skipped_cuboids,
            rows_folded_simd: drill_stats.rows_folded_simd,
            rows_folded_scalar: drill_stats.rows_folded_scalar,
            keys_interned: drill_stats.keys_interned,
            epochs_reclaimed: drill_stats.epochs_reclaimed,
            arena_alloc_calls: drill_stats.arena_alloc_calls,
            arena_bytes_retained: drill_stats.arena_bytes_retained,
        })
    }

    /// Drills one step down from a retained cell of the current cube
    /// (see [`regcube_core::drill`]).
    ///
    /// # Errors
    /// [`StreamError::Core`] before the first non-empty unit close.
    pub fn drill_children(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Vec<DrillHit>> {
        Ok(drill_children(&self.schema, self.cube()?, cuboid, key))
    }

    /// Finds all retained exceptional descendants of a cell of the
    /// current cube.
    ///
    /// # Errors
    /// [`StreamError::Core`] before the first non-empty unit close.
    pub fn drill_descendants(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Vec<DrillHit>> {
        Ok(drill_descendants(&self.schema, self.cube()?, cuboid, key))
    }

    /// The per-window exception history (diffs, chronic conditions).
    pub fn history(&self) -> &CubeHistory {
        &self.history
    }

    /// The tilt frame of an o-layer cell: its regression history at every
    /// granularity the spec registers (e.g. "this city's last day at hour
    /// precision" via [`TiltFrame::merge_level`]).
    pub fn o_layer_frame(&self, key: &CellKey) -> Option<&TiltFrame<Isb>> {
        self.o_frames.get(key)
    }
}

/// Pushes one closed unit into a family of per-cell tilt frames: active
/// cells receive their unit ISB (new cells are zero-backfilled so their
/// timeline starts at the epoch), inactive-but-known cells receive a
/// zero-usage fill. Keeps every frame contiguous with the global clock.
fn push_unit_into_frames(
    frames: &mut FxHashMap<CellKey, TiltFrame<Isb>>,
    spec: &TiltSpec,
    active_cells: &[(CellKey, Isb)],
    unit: i64,
    window: (i64, i64),
    ticks_per_unit: usize,
) -> Result<()> {
    let zero_fill = Isb::new(window.0, window.1, 0.0, 0.0).map_err(StreamError::from)?;
    let mut active: regcube_olap::fxhash::FxHashSet<&CellKey> =
        regcube_olap::fxhash::FxHashSet::default();
    for (key, isb) in active_cells {
        active.insert(key);
        let frame = frames
            .entry(key.clone())
            .or_insert_with(|| TiltFrame::new(spec.clone()));
        if frame.next_unit() == 0 && unit > 0 {
            // Backfill zero slots so the frame timeline matches the
            // global unit clock.
            for u in 0..unit {
                let s = u * ticks_per_unit as i64;
                let fill = Isb::new(s, s + ticks_per_unit as i64 - 1, 0.0, 0.0)
                    .map_err(StreamError::from)?;
                frame.push(fill).map_err(StreamError::from)?;
            }
        }
        frame.push(*isb).map_err(StreamError::from)?;
    }
    for (key, frame) in frames.iter_mut() {
        if !active.contains(key) {
            frame.push(zero_fill).map_err(StreamError::from)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_core::RefMode;

    /// 2 dims (depth 2, fanout 2); primitive = m-layer; o-layer = apex;
    /// 4 ticks per unit; small tilt frame.
    fn engine(policy: ExceptionPolicy) -> OnlineEngine {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(policy)
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .build()
        .unwrap()
    }

    fn feed_unit<E: CubingEngine>(e: &mut OnlineEngine<E>, unit: i64, slope: f64) {
        let t0 = unit * 4;
        for t in t0..t0 + 4 {
            e.ingest(&RawRecord::new(vec![0, 0], t, slope * (t - t0) as f64))
                .unwrap();
            e.ingest(&RawRecord::new(vec![3, 2], t, 1.0)).unwrap();
        }
    }

    #[test]
    fn quiet_stream_raises_no_alarms() {
        let mut e = engine(ExceptionPolicy::slope_threshold(1.0));
        feed_unit(&mut e, 0, 0.1);
        let report = e.close_unit().unwrap();
        assert_eq!(report.unit, 0);
        assert_eq!(report.m_cells, 2);
        assert!(report.alarms.is_empty());
        assert_eq!(e.units_closed(), 1);
    }

    #[test]
    fn hot_stream_raises_an_alarm() {
        let mut e = engine(ExceptionPolicy::slope_threshold(1.0));
        feed_unit(&mut e, 0, 2.0);
        let report = e.close_unit().unwrap();
        assert_eq!(report.alarms.len(), 1);
        let alarm = &report.alarms[0];
        assert!(alarm.score >= 1.0);
        assert_eq!(alarm.threshold, 1.0);
        assert_eq!(alarm.key.ids(), &[0, 0], "apex cell");
        assert!(report.diff.is_none(), "first unit has no previous window");
    }

    #[test]
    fn unit_diffs_surface_fresh_and_cleared_exceptions() {
        let mut e = engine(ExceptionPolicy::slope_threshold(1.0));
        // Unit 0: hot; unit 1: identical; unit 2: calm.
        feed_unit(&mut e, 0, 2.0);
        e.close_unit().unwrap();
        feed_unit(&mut e, 1, 2.0);
        let steady = e.close_unit().unwrap();
        let diff = steady.diff.expect("second unit diffs");
        assert!(diff.is_quiet(), "unchanged exceptions: {diff:?}");
        assert!(!diff.persisted.is_empty());

        feed_unit(&mut e, 2, 0.01);
        let calm = e.close_unit().unwrap();
        let diff = calm.diff.expect("third unit diffs");
        assert!(!diff.cleared.is_empty(), "the hot chain recovered");
        assert!(diff.appeared.is_empty());
        assert_eq!(e.history().len(), 3);
        assert!(e.history().chronic_exceptions().is_empty());
    }

    #[test]
    fn o_layer_frames_track_the_observation_deck() {
        let mut e = engine(ExceptionPolicy::never());
        for u in 0..5 {
            feed_unit(&mut e, u, 0.5);
            e.close_unit().unwrap();
        }
        // The apex o-cell has a frame spanning all 5 units (4 ticks each).
        let apex = CellKey::new(vec![0, 0]);
        let frame = e.o_layer_frame(&apex).expect("o-frame exists");
        assert_eq!(frame.next_unit(), 5);
        let merged = frame.merge_all().unwrap().unwrap();
        assert_eq!(merged.interval(), (0, 19));
        // The per-unit sawtooth has a strong within-unit trend but a flat
        // cross-unit one; the newest fine slot shows the within-unit ramp.
        let newest = frame.merge_recent(0, 1).unwrap().unwrap();
        assert!(newest.slope() > 0.4, "slope {}", newest.slope());
        assert!(merged.slope().abs() < newest.slope());
        // Unknown o-cells have no frame.
        assert!(e.o_layer_frame(&CellKey::new(vec![9, 9])).is_none());
    }

    #[test]
    fn slot_delta_mode_fires_on_change_not_level() {
        let policy = ExceptionPolicy::slope_threshold(1.0).with_ref_mode(RefMode::SlotDelta);
        let mut e = engine(policy);
        // Unit 0: steady strong trend. First unit: delta falls back to own
        // slope -> alarm.
        feed_unit(&mut e, 0, 2.0);
        let r0 = e.close_unit().unwrap();
        assert_eq!(r0.alarms.len(), 1);
        // Unit 1: the *same* strong trend -> delta ≈ 0 -> no alarm.
        feed_unit(&mut e, 1, 2.0);
        let r1 = e.close_unit().unwrap();
        assert!(r1.alarms.is_empty(), "steady trend must not re-alarm");
        // Unit 2: trend collapses -> large delta -> alarm.
        feed_unit(&mut e, 2, -0.5);
        let r2 = e.close_unit().unwrap();
        assert_eq!(r2.alarms.len(), 1);
    }

    #[test]
    fn tilt_frames_track_cells_across_units() {
        let mut e = engine(ExceptionPolicy::never());
        feed_unit(&mut e, 0, 0.5);
        e.close_unit().unwrap();
        // Unit 1: only cell (0,0) active; (3,2) gets a zero fill.
        let t0 = 4;
        for t in t0..t0 + 4 {
            e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
        }
        e.close_unit().unwrap();

        let f_active = e.tilt_frame(&CellKey::new(vec![0, 0])).unwrap();
        assert_eq!(f_active.next_unit(), 2);
        let f_idle = e.tilt_frame(&CellKey::new(vec![3, 2])).unwrap();
        assert_eq!(f_idle.next_unit(), 2);
        let merged = f_idle.merge_all().unwrap().unwrap();
        assert_eq!(merged.interval(), (0, 7));
        // Unknown cells have no frame.
        assert!(e.tilt_frame(&CellKey::new(vec![1, 1])).is_none());
    }

    #[test]
    fn late_cells_get_backfilled_frames() {
        let mut e = engine(ExceptionPolicy::never());
        feed_unit(&mut e, 0, 0.5);
        e.close_unit().unwrap();
        // A brand-new cell appears in unit 1.
        for t in 4..8 {
            e.ingest(&RawRecord::new(vec![1, 1], t, 2.0)).unwrap();
            e.ingest(&RawRecord::new(vec![0, 0], t, 0.1)).unwrap();
        }
        e.close_unit().unwrap();
        let f = e.tilt_frame(&CellKey::new(vec![1, 1])).unwrap();
        let merged = f.merge_all().unwrap().unwrap();
        assert_eq!(merged.interval(), (0, 7), "backfilled from the epoch");
    }

    #[test]
    fn empty_units_are_benign() {
        let mut e = engine(ExceptionPolicy::always());
        let report = e.close_unit().unwrap();
        assert_eq!(report.m_cells, 0);
        assert!(report.alarms.is_empty());
        assert!(e.cube().is_err(), "no cube before the first active unit");
        // Next unit works normally.
        feed_unit(&mut e, 1, 0.2);
        let r1 = e.close_unit().unwrap();
        assert_eq!(r1.m_cells, 2);
        assert!(e.cube().is_ok());
    }

    /// Compile-time Send audit: shards move engines to worker threads,
    /// so every cubing backend (and the type-erased box) must be Send.
    #[test]
    fn engines_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MoCubingEngine>();
        assert_send::<PopularPathEngine>();
        assert_send::<ColumnarCubingEngine>();
        assert_send::<BoxedEngine>();
        assert_send::<ShardedEngine<MoCubingEngine>>();
        assert_send::<ShardedEngine<PopularPathEngine>>();
        assert_send::<ShardedEngine<ColumnarCubingEngine>>();
        assert_send::<OnlineEngine<BoxedEngine>>();
        assert_send::<OnlineEngine<ShardedEngine<MoCubingEngine>>>();
        assert_send::<OnlineEngine<ShardedEngine<ColumnarCubingEngine>>>();
    }

    #[test]
    fn sharded_build_matches_unsharded_reports() {
        // The same stream through 1 and 4 shards: every report must
        // agree on alarms (score/keys) and exception cells.
        let make = |shards: usize| {
            let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
            EngineConfig::new(
                schema,
                CuboidSpec::new(vec![0, 0]),
                CuboidSpec::new(vec![2, 2]),
            )
            .with_policy(ExceptionPolicy::slope_threshold(1.0))
            .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
            .with_ticks_per_unit(4)
            .with_shards(shards)
            .build()
            .unwrap()
        };
        let (mut single, mut sharded) = (make(1), make(4));
        for unit in 0..3 {
            let slope = if unit == 1 { 2.0 } else { 0.1 };
            feed_unit(&mut single, unit, slope);
            feed_unit(&mut sharded, unit, slope);
            let (a, b) = (single.close_unit().unwrap(), sharded.close_unit().unwrap());
            assert_eq!(a.m_cells, b.m_cells, "unit {unit}");
            assert_eq!(a.exception_cells, b.exception_cells, "unit {unit}");
            assert_eq!(a.alarms.len(), b.alarms.len(), "unit {unit}");
            for (x, y) in a.alarms.iter().zip(&b.alarms) {
                assert_eq!(x.key, y.key);
                assert!((x.score - y.score).abs() < 1e-9);
            }
            // Deltas are sorted, so they compare directly.
            let (da, db) = (a.cube_delta.unwrap(), b.cube_delta.unwrap());
            assert_eq!(da.appeared, db.appeared, "unit {unit}");
            assert_eq!(da.cleared, db.cleared, "unit {unit}");
        }
    }

    #[test]
    fn columnar_backend_matches_row_reports() {
        // The same stream through the row and columnar backends (and a
        // sharded columnar run): identical alarms, exception counts and
        // deltas unit after unit.
        let make = |backend: Backend, shards: usize| {
            let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
            EngineConfig::new(
                schema,
                CuboidSpec::new(vec![0, 0]),
                CuboidSpec::new(vec![2, 2]),
            )
            .with_policy(ExceptionPolicy::slope_threshold(1.0))
            .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
            .with_ticks_per_unit(4)
            .with_backend(backend)
            .with_shards(shards)
            .build()
            .unwrap()
        };
        let mut row = make(Backend::Row, 1);
        let mut col = make(Backend::Columnar, 1);
        let mut col_sharded = make(Backend::Columnar, 3);
        for unit in 0..3 {
            let slope = if unit == 1 { 2.0 } else { 0.1 };
            for e in [&mut row, &mut col, &mut col_sharded] {
                feed_unit(e, unit, slope);
            }
            let (a, b, c) = (
                row.close_unit().unwrap(),
                col.close_unit().unwrap(),
                col_sharded.close_unit().unwrap(),
            );
            for (label, other) in [("columnar", &b), ("columnar x3", &c)] {
                assert_eq!(a.m_cells, other.m_cells, "unit {unit} {label}");
                assert_eq!(
                    a.exception_cells, other.exception_cells,
                    "unit {unit} {label}"
                );
                assert_eq!(a.alarms.len(), other.alarms.len(), "unit {unit} {label}");
                for (x, y) in a.alarms.iter().zip(&other.alarms) {
                    assert_eq!(x.key, y.key);
                    assert!((x.score - y.score).abs() < 1e-9);
                }
                let (da, db) = (
                    a.cube_delta.as_ref().unwrap(),
                    other.cube_delta.as_ref().unwrap(),
                );
                assert_eq!(da.appeared, db.appeared, "unit {unit} {label}");
                assert_eq!(da.cleared, db.cleared, "unit {unit} {label}");
            }
        }
    }

    #[test]
    fn columnar_backend_rejects_popular_path() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let err = match EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_algorithm(Algorithm::PopularPath)
        .with_backend(Backend::Columnar)
        .build()
        {
            Ok(_) => panic!("columnar + popular path must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, StreamError::BadConfig { .. }), "{err}");
    }

    #[test]
    fn statically_typed_columnar_builder_works() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_shards(2)
        .build_columnar()
        .unwrap();
        assert_eq!(e.cubing().shards(), 2);
        feed_unit(&mut e, 0, 1.0);
        let report = e.close_unit().unwrap();
        assert_eq!(report.m_cells, 2);
        assert_eq!(e.cube().unwrap().m_layer_cells(), 2);
    }

    #[test]
    fn statically_typed_sharded_builders_work() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_shards(2)
        .build_mo()
        .unwrap();
        assert_eq!(e.cubing().shards(), 2);
        for t in 0..4 {
            e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
            e.ingest(&RawRecord::new(vec![3, 2], t, 2.0)).unwrap();
        }
        let report = e.close_unit().unwrap();
        assert_eq!(report.m_cells, 2);
        assert_eq!(e.cube().unwrap().m_layer_cells(), 2);
    }

    #[test]
    fn sinks_consume_every_unit_delta() {
        use regcube_core::alarm::{self, AlarmLog, DashboardSummary, SharedSink};
        let log = alarm::shared(AlarmLog::new(32));
        let dash = alarm::shared(DashboardSummary::new());
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(ExceptionPolicy::slope_threshold(1.0))
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_sinks([log.clone() as SharedSink, dash.clone() as SharedSink])
        .build()
        .unwrap();
        assert_eq!(e.sink_count(), 2);

        // Unit 0 hot, unit 1 calm: one full episode.
        feed_unit(&mut e, 0, 2.0);
        let r0 = e.close_unit().unwrap();
        assert!(r0.sink_errors.is_empty());
        feed_unit(&mut e, 1, 0.0);
        e.close_unit().unwrap();

        let log = log.lock().unwrap();
        assert!(log.opened_total() > 0);
        assert_eq!(log.open_count(), 0, "calm unit closed every episode");
        for ep in log.closed_episodes() {
            assert_eq!(ep.raised_at, 0);
            assert_eq!(ep.cleared_at, Some(1));
        }
        let dash = dash.lock().unwrap();
        assert_eq!(dash.units_seen(), 2);
        assert_eq!(dash.active_cells(), 0);
        assert_eq!(dash.appeared_total(), dash.cleared_total());
    }

    /// A foreign engine that violates the sorted-delta contract: wraps
    /// Algorithm 1 but reverses the transition lists. The stream layer
    /// must re-sort before sinks observe the delta.
    struct UnsortedEngine(MoCubingEngine);
    impl CubingEngine for UnsortedEngine {
        fn algorithm(&self) -> regcube_core::result::Algorithm {
            self.0.algorithm()
        }
        fn ingest_unit(
            &mut self,
            tuples: &[regcube_core::MTuple],
        ) -> regcube_core::Result<UnitDelta> {
            let mut delta = self.0.ingest_unit(tuples)?;
            delta.appeared.reverse();
            delta.cleared.reverse();
            Ok(delta)
        }
        fn result(&self) -> &regcube_core::CubeResult {
            self.0.result()
        }
        fn stats(&self) -> &regcube_core::RunStats {
            self.0.stats()
        }
    }

    #[test]
    fn unsorted_foreign_engines_still_deliver_sorted_deltas() {
        use regcube_core::alarm::{AlarmContext, AlarmSink, SharedSink};
        use regcube_core::CoreError;

        /// Records what it observes; fails if a delta arrives unsorted.
        struct SortAsserting {
            deltas_seen: usize,
        }
        impl AlarmSink for SortAsserting {
            fn name(&self) -> &'static str {
                "sort-asserting"
            }
            fn on_unit(
                &mut self,
                delta: &UnitDelta,
                _ctx: &AlarmContext<'_>,
            ) -> regcube_core::Result<()> {
                for list in [&delta.appeared, &delta.cleared] {
                    if list.windows(2).any(|w| w[0] > w[1]) {
                        return Err(CoreError::BadInput {
                            detail: "unsorted delta reached a sink".into(),
                        });
                    }
                }
                self.deltas_seen += 1;
                Ok(())
            }
        }

        let sink = regcube_core::alarm::shared(SortAsserting { deltas_seen: 0 });
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(ExceptionPolicy::slope_threshold(0.5))
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_sink(sink.clone() as SharedSink)
        .build_with(|schema, layers, policy| {
            MoCubingEngine::transient(schema, layers, policy).map(UnsortedEngine)
        })
        .unwrap();

        for unit in 0..3 {
            feed_unit(&mut e, unit, if unit == 1 { 2.0 } else { 0.1 });
            let report = e.close_unit().unwrap();
            assert!(report.sink_errors.is_empty(), "unit {unit}");
            // The report's delta is the re-sorted one, too.
            let delta = report.cube_delta.unwrap();
            for list in [&delta.appeared, &delta.cleared] {
                assert!(list.windows(2).all(|w| w[0] <= w[1]));
            }
        }
        assert_eq!(sink.lock().unwrap().deltas_seen, 3);
    }

    #[test]
    fn failing_sinks_surface_once_without_poisoning_the_unit() {
        use regcube_core::alarm::{self, AlarmContext, AlarmLog, AlarmSink, SharedSink};
        use regcube_core::CoreError;

        struct AlwaysFails;
        impl AlarmSink for AlwaysFails {
            fn name(&self) -> &'static str {
                "always-fails"
            }
            fn on_unit(&mut self, _: &UnitDelta, _: &AlarmContext<'_>) -> regcube_core::Result<()> {
                Err(CoreError::BadInput {
                    detail: "broken sink".into(),
                })
            }
        }

        let log = alarm::shared(AlarmLog::new(8));
        let mut e = engine(ExceptionPolicy::slope_threshold(1.0));
        e.add_sink(alarm::shared(AlwaysFails) as SharedSink);
        e.add_sink(log.clone() as SharedSink);

        feed_unit(&mut e, 0, 2.0);
        let report = e.close_unit().unwrap();
        // The unit succeeded: delta applied, alarms raised, one error.
        assert_eq!(report.alarms.len(), 1);
        assert!(report.cube_delta.is_some());
        assert_eq!(report.sink_errors.len(), 1);
        assert_eq!(report.sink_errors[0].sink, "always-fails");
        assert!(report.sink_errors[0].message.contains("broken sink"));
        // Later sinks in the set still ran.
        assert!(log.lock().unwrap().opened_total() > 0);
        // The engine keeps working (and keeps surfacing one error per unit).
        feed_unit(&mut e, 1, 0.1);
        let r1 = e.close_unit().unwrap();
        assert_eq!(r1.sink_errors.len(), 1);
        assert!(e.cube().is_ok());
    }

    #[test]
    fn popular_path_engine_works_too() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(ExceptionPolicy::slope_threshold(0.5))
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_algorithm(Algorithm::PopularPath)
        .build()
        .unwrap();
        feed_unit(&mut e, 0, 2.0);
        let report = e.close_unit().unwrap();
        assert_eq!(report.alarms.len(), 1);
        assert_eq!(e.cube().unwrap().algorithm(), Algorithm::PopularPath);
    }
}
