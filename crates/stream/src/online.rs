//! The online engine: one cube recomputation per m-layer time unit,
//! per-cell tilt frames, and o-layer alarms (paper Sections 4.3 / 4.5).

use crate::error::StreamError;
use crate::ingest::Ingestor;
use crate::record::RawRecord;
use crate::reorder::{ReorderConfig, ReorderState, WatermarkPolicy};
use crate::snapshot::{drill_frames_at, CubeSnapshot};
use crate::Result;
use regcube_core::alarm::{
    AlarmContext, AlarmRevision, LateAmendment, SharedSink, SinkError, SinkSet,
};
use regcube_core::arena::ArenaCubingEngine;
use regcube_core::columnar::ColumnarCubingEngine;
use regcube_core::drill::{drill_children, drill_descendants, DrillHit};
use regcube_core::engine::{Backend, CubingEngine, MoCubingEngine, PopularPathEngine, UnitDelta};
use regcube_core::history::{CubeHistory, ExceptionDiff};
use regcube_core::pool::WorkerPool;
use regcube_core::result::Algorithm;
use regcube_core::shard::ShardedEngine;
use regcube_core::{CoreError, CriticalLayers, CubeResult, ExceptionPolicy, RunStats};
use regcube_olap::cell::{project_key, CellKey};
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::Isb;
use regcube_tilt::{AmendOutcome, TiltError, TiltFrame, TiltSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The type-erased cubing engine [`EngineConfig::build`] selects at
/// runtime from [`EngineConfig::algorithm`].
pub type BoxedEngine = Box<dyn CubingEngine + Send>;

/// One o-layer alarm raised at a unit close.
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// The exceptional o-layer cell.
    pub key: CellKey,
    /// Its regression over the closed unit.
    pub measure: Isb,
    /// The score that fired (own slope or slot delta, per policy).
    pub score: f64,
    /// The threshold it passed.
    pub threshold: f64,
}

/// The report of one closed m-layer unit.
#[derive(Debug, Clone)]
pub struct UnitReport {
    /// The closed unit index.
    pub unit: i64,
    /// Distinct m-cells active in the unit.
    pub m_cells: usize,
    /// Alarms raised at the o-layer, hottest first.
    pub alarms: Vec<Alarm>,
    /// Exception cells retained between the layers.
    pub exception_cells: u64,
    /// Time spent recomputing the cube.
    pub recompute_time: Duration,
    /// Exception changes against the previous unit (`None` for the first
    /// computed unit): fresh alerts, recoveries, persisting conditions.
    pub diff: Option<ExceptionDiff>,
    /// What the cubing engine reported for the unit's batch (`None` for
    /// an empty unit, which never reaches the engine).
    pub cube_delta: Option<UnitDelta>,
    /// Failures from alarm sinks consuming the unit's delta. A failing
    /// sink never fails the unit — the cube is already updated when
    /// sinks run, so each error is surfaced exactly once, here.
    pub sink_errors: Vec<SinkError>,
    /// Off-path cuboids the popular-path drill re-aggregated (or
    /// retracted) for this unit, summed across shards. Zero for
    /// Algorithm 1 backends and for empty units. See
    /// [`RunStats::drill_replayed_cuboids`](regcube_core::RunStats).
    pub drill_replayed_cuboids: u64,
    /// Off-path cuboids the popular-path engine's step 3 left
    /// untouched for this unit (retained output reused verbatim, or no
    /// drill candidates at all), summed across shards — the work the
    /// frontier-dirty replay saved. See
    /// [`RunStats::drill_skipped_cuboids`](regcube_core::RunStats).
    pub drill_skipped_cuboids: u64,
    /// Source rows the unit's cubing folded through the chunked kernel
    /// layer (blocked LUT projection + run folds), summed across
    /// shards. Zero for row backends, empty units, and when the scalar
    /// fallback is forced. See
    /// [`RunStats::rows_folded_simd`](regcube_core::RunStats).
    pub rows_folded_simd: u64,
    /// Source rows the unit's cubing folded through the scalar per-row
    /// path, summed across shards. For the columnar backend
    /// `rows_folded_simd + rows_folded_scalar` equals the unit's total
    /// folded rows. See
    /// [`RunStats::rows_folded_scalar`](regcube_core::RunStats).
    pub rows_folded_scalar: u64,
    /// Cell keys the arena backend interned for the unit, summed across
    /// shards. Zero for the row and columnar backends and for empty
    /// units. See [`RunStats::keys_interned`](regcube_core::RunStats).
    pub keys_interned: u64,
    /// Whole arena epochs the unit reclaimed in O(1), summed across
    /// shards (arena backend only). See
    /// [`RunStats::epochs_reclaimed`](regcube_core::RunStats).
    pub epochs_reclaimed: u64,
    /// Heap allocations the arena layer performed for the unit, summed
    /// across shards — zero in steady state once the working set is
    /// built. See
    /// [`RunStats::arena_alloc_calls`](regcube_core::RunStats).
    pub arena_alloc_calls: u64,
    /// Bytes the arena working set retains across windows, summed
    /// across shards (arena backend only). See
    /// [`RunStats::arena_bytes_retained`](regcube_core::RunStats).
    pub arena_bytes_retained: usize,
    /// Late-record corrections applied to the warehoused tilt frames
    /// since the previous report (watermark mode only — see
    /// [`EngineConfig::with_reordering`]). Also fanned out to the alarm
    /// sinks via
    /// [`AlarmSink::on_late_amendments`](regcube_core::alarm::AlarmSink::on_late_amendments).
    pub late_amendments: Vec<LateAmendment>,
    /// Alarm revisions the unit's late amendments produced: a late
    /// record that flips a warehoused slot's exception verdict (or
    /// changes a still-exceptional score) is re-screened against the
    /// policy and surfaced here — and fanned out to the alarm sinks via
    /// [`AlarmSink::on_revision`](regcube_core::alarm::AlarmSink::on_revision)
    /// — so episode history never contradicts the amended frames.
    pub alarm_revisions: Vec<AlarmRevision>,
    /// Records that arrived beyond the allowed lateness since the
    /// previous report — deterministically counted and dropped, never
    /// silently lost. Cumulative figure:
    /// [`OnlineEngine::late_dropped`] /
    /// [`RunStats::late_dropped`](regcube_core::RunStats).
    pub late_dropped: u64,
    /// The publication epoch this close advanced the engine to (the
    /// total closed-unit count): a [`CubeSnapshot`] taken after this
    /// close carries exactly this [`CubeSnapshot::epoch`], which is how
    /// serving layers correlate published snapshots with unit reports.
    pub snapshot_epoch: u64,
}

/// Configuration of an [`OnlineEngine`], built fluently:
///
/// ```
/// use regcube_stream::online::EngineConfig;
/// use regcube_core::ExceptionPolicy;
/// use regcube_olap::{CubeSchema, CuboidSpec};
///
/// let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
/// let config = EngineConfig::new(
///     schema,
///     CuboidSpec::new(vec![0, 0]),   // o-layer
///     CuboidSpec::new(vec![2, 2]),   // m-layer
/// )
/// .with_policy(ExceptionPolicy::slope_threshold(1.0))
/// .with_ticks_per_unit(15);
/// assert!(config.build().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Cube schema (standard dimensions).
    pub schema: CubeSchema,
    /// Primitive stream layer the raw records arrive at; defaults to the
    /// m-layer (pre-aggregated input).
    pub primitive: CuboidSpec,
    /// Observation layer.
    pub o_layer: CuboidSpec,
    /// Minimal interesting layer.
    pub m_layer: CuboidSpec,
    /// Exception policy (threshold + reference mode); defaults to a
    /// cube-wide threshold of 1.
    pub policy: ExceptionPolicy,
    /// Tilt frame shape; defaults to the paper's Figure 4 frame.
    pub tilt_spec: TiltSpec,
    /// Raw ticks per m-layer time unit; defaults to 15 (minutes/quarter).
    pub ticks_per_unit: usize,
    /// Cubing algorithm; defaults to m/o-cubing.
    pub algorithm: Algorithm,
    /// Physical table layout of the cubing backend; defaults to the row
    /// (hash-map) layout. [`Backend::Columnar`] selects the
    /// struct-of-arrays roll-up of [`regcube_core::columnar`] and
    /// [`Backend::Arena`] the interned-key arena tables of
    /// [`regcube_core::arena`] (both Algorithm 1 only). A row-default
    /// configuration running Algorithm 1 is upgraded at
    /// [`build`](Self::build) time by [`Backend::from_env`]
    /// (`REGCUBE_ARENA_BACKEND=1` — CI's whole-workspace arena pass).
    pub backend: Backend,
    /// Number of cubing shards (m-layer hash partitions cubed in
    /// parallel and merged via Theorem 3.2); defaults to 1 (unsharded).
    pub shards: usize,
    /// Alarm sinks receiving every unit's [`UnitDelta`] (merged and
    /// sorted — the identical stream at every shard count); defaults to
    /// none. Sinks are shared (`Arc<Mutex<_>>`), so cloning the config
    /// shares them.
    pub sinks: SinkSet,
    /// Retained depth of the per-window exception history
    /// ([`CubeHistory`]); defaults to 16 windows. Must be at least 1.
    pub history_depth: usize,
    /// Out-of-order handling: `None` (the default) consults
    /// [`ReorderConfig::from_env`] at [`build`](Self::build) time
    /// (`REGCUBE_REORDER_CAP` / `REGCUBE_REORDER_LATENESS`); an explicit
    /// [`with_reordering`](Self::with_reordering) choice always wins.
    /// Disabled reordering leaves the ingest path byte-identical to the
    /// strictly-ordered engine.
    pub reordering: Option<ReorderConfig>,
    /// A shared [`WorkerPool`] for the cubing layer
    /// ([`with_cubing_pool`](Self::with_cubing_pool)); defaults to
    /// `None` (sharded engines spawn a private pool, unsharded Algorithm
    /// 1 rolls tiers up sequentially). Serving layers hosting many
    /// tenant engines set this so thousands of tenants multiplex over
    /// one bounded worker set instead of spawning per-tenant threads.
    pub cubing_pool: Option<Arc<WorkerPool>>,
}

impl EngineConfig {
    /// Starts a configuration with paper-style defaults (see field docs).
    pub fn new(schema: CubeSchema, o_layer: CuboidSpec, m_layer: CuboidSpec) -> Self {
        EngineConfig {
            schema,
            primitive: m_layer.clone(),
            o_layer,
            m_layer,
            policy: ExceptionPolicy::slope_threshold(1.0),
            tilt_spec: TiltSpec::paper_figure4(),
            ticks_per_unit: 15,
            algorithm: Algorithm::MoCubing,
            backend: Backend::Row,
            shards: 1,
            sinks: SinkSet::new(),
            history_depth: 16,
            reordering: None,
            cubing_pool: None,
        }
    }

    /// Runs the cubing layer's parallel work (shard fans, per-cuboid
    /// merges, the unsharded tier roll-up) on a shared [`WorkerPool`]
    /// instead of per-engine threads. **Never** pass a pool that also
    /// *dispatches* jobs which drive this engine — a pool job blocking
    /// on its own queue can deadlock (see [`regcube_core::pool`]); give
    /// the cubing layer its own pool, as `regcube_serve` does.
    #[must_use]
    pub fn with_cubing_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.cubing_pool = Some(pool);
        self
    }

    /// Sets the retained depth of the per-window exception history
    /// (diffs and chronic-exception tracking keep the last `depth`
    /// windows). [`build`](Self::build) rejects `0`.
    #[must_use]
    pub fn with_history_depth(mut self, depth: usize) -> Self {
        self.history_depth = depth;
        self
    }

    /// Enables watermark-based out-of-order ingestion: records may
    /// arrive in any order as long as they land within `lateness` units
    /// of the maximum observed tick. The engine buffers up to
    /// `capacity` distinct units (the open one plus future ones),
    /// re-sorts each unit into a canonical order at close — so any
    /// in-lateness arrival order is **bit-identical** to sorted replay —
    /// and turns records for already-closed units into exact tilt-frame
    /// amendments via the OLS linearity of Theorem 3.3 mergeability
    /// (see [`TiltFrame::amend_slot`] and
    /// [`Isb::amend_tick`](regcube_regress::Isb::amend_tick)). Records
    /// older than the allowed lateness are counted in
    /// [`RunStats::late_dropped`](regcube_core::RunStats) — never
    /// silently lost. `capacity == 0` disables reordering explicitly
    /// (overriding any `REGCUBE_REORDER_CAP` environment default).
    #[must_use]
    pub fn with_reordering(mut self, capacity: usize, lateness: i64) -> Self {
        let policy = self
            .reordering
            .map_or(WatermarkPolicy::Global, |c| c.policy);
        self.reordering = Some(ReorderConfig::new(capacity, lateness).with_policy(policy));
        self
    }

    /// Sets the watermark policy of the reordering stage (order relative
    /// to [`with_reordering`](Self::with_reordering) does not matter).
    /// [`WatermarkPolicy::PerSource`] keys the low watermark on the
    /// minimum over live [`RawRecord::source`] maxima instead of the
    /// global frontier, so a slow source holds closes back until it
    /// catches up — or idles beyond `idle_units` and is evicted. Without
    /// an explicit [`with_reordering`](Self::with_reordering) call the
    /// policy applies on top of the environment default capacity.
    #[must_use]
    pub fn with_watermark_policy(mut self, policy: WatermarkPolicy) -> Self {
        let cfg = self.reordering.unwrap_or_else(ReorderConfig::from_env);
        self.reordering = Some(cfg.with_policy(policy));
        self
    }

    /// Sets the primitive layer raw records arrive at.
    #[must_use]
    pub fn with_primitive(mut self, primitive: CuboidSpec) -> Self {
        self.primitive = primitive;
        self
    }

    /// Sets the exception policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ExceptionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the tilt frame specification.
    #[must_use]
    pub fn with_tilt(mut self, spec: TiltSpec) -> Self {
        self.tilt_spec = spec;
        self
    }

    /// Sets the number of raw ticks per m-layer unit.
    #[must_use]
    pub fn with_ticks_per_unit(mut self, ticks: usize) -> Self {
        self.ticks_per_unit = ticks;
        self
    }

    /// Sets the cubing algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the physical table layout of the cubing backend. The
    /// columnar and arena backends implement Algorithm 1 (m/o-cubing)
    /// only; [`build`](Self::build) rejects `Columnar` or `Arena`
    /// together with [`Algorithm::PopularPath`]. Every backend produces
    /// the same cube at every shard count — see the README's "Choosing
    /// a backend".
    ///
    /// ```
    /// use regcube_stream::online::EngineConfig;
    /// use regcube_core::Backend;
    /// use regcube_olap::{CubeSchema, CuboidSpec};
    ///
    /// let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    /// let config = EngineConfig::new(
    ///     schema,
    ///     CuboidSpec::new(vec![0, 0]),
    ///     CuboidSpec::new(vec![2, 2]),
    /// )
    /// .with_backend(Backend::Columnar);
    /// assert!(config.build().is_ok());
    /// ```
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the number of cubing shards (clamped to at least 1). With
    /// `n > 1` every build path routes cubing through a
    /// [`ShardedEngine`]: each unit's m-layer batch is hash-partitioned
    /// across `n` inner engines, cubed in parallel on a worker pool and
    /// merged via Theorem 3.2 linearity. One shard is the unsharded
    /// fast path. See `regcube_core::shard` for the exactness contract
    /// and the README for choosing a shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Registers alarm sinks: every closed non-empty unit's
    /// [`UnitDelta`] is fanned out to them (in registration order)
    /// right after the cube is updated, together with an
    /// [`AlarmContext`] for score lookups. Wrap each sink with
    /// [`regcube_core::alarm::shared`] and keep a clone to query it
    /// while the engine runs. See [`regcube_core::alarm`] for the
    /// ready-made sinks (log, escalator, dashboard).
    ///
    /// ```
    /// use regcube_stream::online::EngineConfig;
    /// use regcube_core::alarm::{self, AlarmLog, DashboardSummary, SharedSink};
    /// use regcube_olap::{CubeSchema, CuboidSpec};
    ///
    /// let log = alarm::shared(AlarmLog::new(128));
    /// let dash = alarm::shared(DashboardSummary::new());
    /// let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    /// let config = EngineConfig::new(
    ///     schema,
    ///     CuboidSpec::new(vec![0, 0]),
    ///     CuboidSpec::new(vec![2, 2]),
    /// )
    /// .with_sinks([log.clone() as SharedSink, dash.clone() as SharedSink]);
    /// assert!(config.build().is_ok());
    /// assert_eq!(dash.lock().unwrap().active_cells(), 0);
    /// ```
    #[must_use]
    pub fn with_sinks(mut self, sinks: impl IntoIterator<Item = SharedSink>) -> Self {
        for sink in sinks {
            self.sinks.push(sink);
        }
        self
    }

    /// Registers one alarm sink (see [`with_sinks`](Self::with_sinks)).
    #[must_use]
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Builds the engine, selecting the cubing strategy at runtime from
    /// [`algorithm`](Self::algorithm) and [`backend`](Self::backend)
    /// (type-erased behind [`BoxedEngine`]); a [`shards`](Self::shards)
    /// count above 1 wraps the strategy in a [`ShardedEngine`].
    /// Row-default Algorithm 1 configurations honor
    /// [`Backend::from_env`] (`REGCUBE_ARENA_BACKEND=1` forces the
    /// arena layout process-wide).
    ///
    /// # Errors
    /// [`StreamError::BadConfig`] for [`Backend::Columnar`] or
    /// [`Backend::Arena`] combined with [`Algorithm::PopularPath`]
    /// (those backends implement Algorithm 1 only); otherwise
    /// configuration validation from the ingestor and cube substrates.
    pub fn build(self) -> Result<OnlineEngine<BoxedEngine>> {
        let algorithm = self.algorithm;
        let mut backend = self.backend;
        let shards = self.shards;
        // The env override upgrades row-default Algorithm 1 configs only:
        // explicit backend choices and popular-path runs keep their
        // layout (the arena implements Algorithm 1, not drilling).
        if backend == Backend::Row && algorithm == Algorithm::MoCubing {
            backend = Backend::from_env();
        }
        if algorithm == Algorithm::PopularPath && backend != Backend::Row {
            return Err(StreamError::BadConfig {
                detail: format!(
                    "the {backend:?} backend implements Algorithm 1 (MoCubing) only; \
                     use Backend::Row with Algorithm::PopularPath"
                ),
            });
        }
        let pool = self.cubing_pool.clone();
        self.build_with(
            move |schema, layers, policy| match (algorithm, backend, shards) {
                (Algorithm::MoCubing, Backend::Row, 1) => {
                    MoCubingEngine::transient(schema, layers, policy)
                        .map(|e| match &pool {
                            Some(p) => e.with_pool(Arc::clone(p)),
                            None => e,
                        })
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Row, n) => {
                    ShardedEngine::mo_cubing(schema, layers, policy, n)
                        .map(|e| match &pool {
                            Some(p) => e.with_shared_pool(Arc::clone(p)),
                            None => e,
                        })
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Columnar, 1) => {
                    ColumnarCubingEngine::new(schema, layers, policy)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Columnar, n) => {
                    ShardedEngine::columnar(schema, layers, policy, n)
                        .map(|e| match &pool {
                            Some(p) => e.with_shared_pool(Arc::clone(p)),
                            None => e,
                        })
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Arena, 1) => {
                    ArenaCubingEngine::new(schema, layers, policy)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::MoCubing, Backend::Arena, n) => {
                    ShardedEngine::arena(schema, layers, policy, n)
                        .map(|e| match &pool {
                            Some(p) => e.with_shared_pool(Arc::clone(p)),
                            None => e,
                        })
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::PopularPath, _, 1) => {
                    PopularPathEngine::new(schema, layers, policy, None)
                        .map(|e| Box::new(e) as BoxedEngine)
                }
                (Algorithm::PopularPath, _, n) => {
                    ShardedEngine::popular_path(schema, layers, policy, n)
                        .map(|e| match &pool {
                            Some(p) => e.with_shared_pool(Arc::clone(p)),
                            None => e,
                        })
                        .map(|e| Box::new(e) as BoxedEngine)
                }
            },
        )
    }

    /// Builds the engine and restores it from a checkpoint file written
    /// by [`OnlineEngine::write_checkpoint`] (see
    /// [`crate::checkpoint::restore`]). The configuration must describe
    /// the same analysis as the checkpointed engine; backend, shard
    /// count and sinks are free to differ.
    ///
    /// # Errors
    /// [`StreamError::Checkpoint`] for a missing, torn, corrupt or
    /// incompatible checkpoint (all-or-nothing: no partially restored
    /// engine escapes); otherwise the same configuration validation as
    /// [`build`](Self::build).
    pub fn restore(self, path: impl AsRef<std::path::Path>) -> Result<OnlineEngine<BoxedEngine>> {
        crate::checkpoint::restore(self, path)
    }

    /// Builds a statically-typed engine running the columnar backend
    /// ([`ColumnarCubingEngine`]) across [`shards`](Self::shards)
    /// partitions (a single shard is an exact passthrough).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_columnar(self) -> Result<OnlineEngine<ShardedEngine<ColumnarCubingEngine>>> {
        let shards = self.shards;
        let pool = self.cubing_pool.clone();
        self.build_with(move |schema, layers, policy| {
            ShardedEngine::columnar(schema, layers, policy, shards).map(|e| match pool {
                Some(p) => e.with_shared_pool(p),
                None => e,
            })
        })
    }

    /// Builds a statically-typed engine running the arena backend
    /// ([`ArenaCubingEngine`]) across [`shards`](Self::shards)
    /// partitions (a single shard is an exact passthrough).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_arena(self) -> Result<OnlineEngine<ShardedEngine<ArenaCubingEngine>>> {
        let shards = self.shards;
        let pool = self.cubing_pool.clone();
        self.build_with(move |schema, layers, policy| {
            ShardedEngine::arena(schema, layers, policy, shards).map(|e| match pool {
                Some(p) => e.with_shared_pool(p),
                None => e,
            })
        })
    }

    /// Builds a statically-typed engine running Algorithm 1 across
    /// [`shards`](Self::shards) partitions (a single shard is an exact
    /// passthrough to one transient [`MoCubingEngine`], so the default
    /// configuration behaves as before the sharding refactor).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_mo(self) -> Result<OnlineEngine<ShardedEngine<MoCubingEngine>>> {
        let shards = self.shards;
        let pool = self.cubing_pool.clone();
        self.build_with(move |schema, layers, policy| {
            ShardedEngine::mo_cubing(schema, layers, policy, shards).map(|e| match pool {
                Some(p) => e.with_shared_pool(p),
                None => e,
            })
        })
    }

    /// Builds a statically-typed engine running Algorithm 2 with the
    /// default popular path across [`shards`](Self::shards) partitions
    /// (a single shard is an exact passthrough).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_popular_path(self) -> Result<OnlineEngine<ShardedEngine<PopularPathEngine>>> {
        let shards = self.shards;
        let pool = self.cubing_pool.clone();
        self.build_with(move |schema, layers, policy| {
            ShardedEngine::popular_path(schema, layers, policy, shards).map(|e| match pool {
                Some(p) => e.with_shared_pool(p),
                None => e,
            })
        })
    }

    /// Builds an engine around any [`CubingEngine`] the caller
    /// constructs — the seam for custom (sharded, instrumented, …)
    /// cubing backends.
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn build_with<E: CubingEngine>(
        self,
        make: impl FnOnce(CubeSchema, CriticalLayers, ExceptionPolicy) -> regcube_core::Result<E>,
    ) -> Result<OnlineEngine<E>> {
        let EngineConfig {
            schema,
            primitive,
            o_layer,
            m_layer,
            policy,
            tilt_spec,
            ticks_per_unit,
            algorithm: _,
            backend: _,
            shards: _,
            sinks,
            history_depth,
            reordering,
            cubing_pool: _,
        } = self;
        if history_depth == 0 {
            return Err(StreamError::BadConfig {
                detail: "history_depth must be at least 1".into(),
            });
        }
        // An explicit reordering choice wins; otherwise the environment
        // fills the default (CI's REGCUBE_REORDER_CAP=0 pass pins the
        // watermark-off path without disturbing tests that opt in).
        let reorder_cfg = reordering.unwrap_or_else(ReorderConfig::from_env);
        let ingestor = Ingestor::new(schema.clone(), primitive, m_layer.clone(), ticks_per_unit)?;
        let layers = CriticalLayers::new(&schema, o_layer.clone(), m_layer.clone())
            .map_err(StreamError::from)?;
        let cubing = make(schema.clone(), layers, policy.clone()).map_err(StreamError::from)?;
        Ok(OnlineEngine {
            ingestor,
            schema,
            cubing,
            computed: false,
            tilt_spec,
            frames: FxHashMap::default(),
            o_frames: FxHashMap::default(),
            prev_o_layer: FxHashMap::default(),
            history: CubeHistory::new(history_depth),
            ticks_per_unit,
            units_closed: 0,
            sinks,
            m_layer,
            o_layer,
            policy,
            reorder: reorder_cfg
                .enabled()
                .then(|| ReorderState::new(reorder_cfg)),
            pending_amendments: Vec::new(),
            pending_revisions: Vec::new(),
            late_amended_total: 0,
            last_alarms: Vec::new(),
            last_closed_unit: None,
            snapshots_published: AtomicU64::new(0),
        })
    }
}

/// The online analysis engine, generic over the cubing strategy `E`.
///
/// Feed raw records with [`ingest`](Self::ingest); call
/// [`close_unit`](Self::close_unit) at every m-layer time-unit boundary
/// (e.g. every quarter of an hour). Each close:
///
/// 1. rolls the unit's records up to m-layer ISB tuples,
/// 2. pushes every cell's unit ISB into its tilt frame (absent cells get
///    a zero-usage fill so frames stay contiguous),
/// 3. feeds the unit's tuples to the [`CubingEngine`] (which opens a new
///    cube unit for the new window), and
/// 4. raises alarms for exceptional o-layer cells, scoring with the
///    policy's [`RefMode`](regcube_core::RefMode) against the previous
///    unit's o-layer.
///
/// `E` defaults to the runtime-selected [`BoxedEngine`] that
/// [`EngineConfig::build`] produces; [`EngineConfig::build_with`] plugs
/// in any other [`CubingEngine`] implementation statically.
#[derive(Debug)]
pub struct OnlineEngine<E: CubingEngine = BoxedEngine> {
    pub(crate) ingestor: Ingestor,
    pub(crate) schema: CubeSchema,
    pub(crate) cubing: E,
    /// Whether at least one non-empty unit reached the cubing engine.
    pub(crate) computed: bool,
    pub(crate) tilt_spec: TiltSpec,
    /// Per-m-cell tilt frames (the warehoused stream history).
    pub(crate) frames: FxHashMap<CellKey, TiltFrame<Isb>>,
    /// Per-o-cell tilt frames — "the cuboids at the o-layer should be
    /// computed dynamically according to the tilt time frame model as
    /// well" (Example 4): the observation deck at every granularity.
    pub(crate) o_frames: FxHashMap<CellKey, TiltFrame<Isb>>,
    pub(crate) prev_o_layer: FxHashMap<CellKey, Isb>,
    pub(crate) history: CubeHistory,
    pub(crate) ticks_per_unit: usize,
    pub(crate) units_closed: u64,
    /// Alarm sinks receiving the merged, sorted per-unit delta.
    sinks: SinkSet,
    /// The m-layer spec (for projecting late records to their o-cell).
    pub(crate) m_layer: CuboidSpec,
    /// The o-layer spec (late-amendment projection and drill scoring).
    pub(crate) o_layer: CuboidSpec,
    /// The exception policy (time-travel drill scoring).
    pub(crate) policy: ExceptionPolicy,
    /// Bounded reordering + watermark state; `None` when disabled (the
    /// strictly-ordered ingest path, byte-identical to the pre-watermark
    /// engine).
    pub(crate) reorder: Option<ReorderState>,
    /// Late-record tilt amendments applied since the last unit report.
    pub(crate) pending_amendments: Vec<LateAmendment>,
    /// Alarm revisions produced by late amendments since the last unit
    /// report (see [`UnitReport::alarm_revisions`]).
    pub(crate) pending_revisions: Vec<AlarmRevision>,
    /// Late amendments applied since construction (cumulative — the
    /// [`RunStats::late_amendments`](regcube_core::RunStats) figure).
    pub(crate) late_amended_total: u64,
    /// The last closed unit's alarms — captured into snapshots so the
    /// serving layer's published view carries the alarm state of its
    /// unit boundary.
    pub(crate) last_alarms: Vec<Alarm>,
    /// The last closed unit index (`None` before the first close).
    pub(crate) last_closed_unit: Option<i64>,
    /// Snapshots taken from this engine ([`snapshot`](Self::snapshot)),
    /// surfaced as [`RunStats::snapshots_published`]. Atomic so the
    /// shared-reference snapshot hook can count without `&mut self`.
    snapshots_published: AtomicU64,
}

impl OnlineEngine {
    /// Creates a runtime-configured engine (see [`EngineConfig::build`]).
    ///
    /// # Errors
    /// Configuration validation from the ingestor and cube substrates.
    pub fn new(config: EngineConfig) -> Result<Self> {
        config.build()
    }
}

impl<E: CubingEngine> OnlineEngine<E> {
    /// Ingests one raw record.
    ///
    /// With reordering disabled (the default) the record must belong to
    /// the open unit. With [`EngineConfig::with_reordering`] the record
    /// may arrive out of order: open-or-future units are buffered
    /// (canonically re-sorted at close), units within the allowed
    /// lateness of the open one amend the warehoused tilt frames
    /// exactly, and older records are counted in
    /// [`late_dropped`](Self::late_dropped) and dropped.
    ///
    /// # Errors
    /// * [`StreamError::OutOfWindow`] — reordering disabled and the
    ///   tick is outside the open unit.
    /// * [`StreamError::ReorderOverflow`] — the bounded buffer cannot
    ///   admit another future unit (close ready units first, e.g. via
    ///   [`drain_ready`](Self::drain_ready)).
    /// * [`StreamError::BadRecord`] for arity/member violations.
    pub fn ingest(&mut self, record: &RawRecord) -> Result<()> {
        if self.reorder.is_none() {
            return self.ingestor.ingest(record);
        }
        self.ingestor.validate(record)?;
        let unit = record.tick.div_euclid(self.ticks_per_unit as i64);
        let open = self.ingestor.open_unit();
        let st = self.reorder.as_mut().expect("reorder enabled");
        st.observe_from(unit, record.source);
        if unit >= open {
            return st.buffer(unit, record.clone());
        }
        if unit < 0 || unit < open - st.config().lateness {
            st.count_drop();
            return Ok(());
        }
        self.amend_late(unit, record)
    }

    /// Applies an in-lateness record for an already-closed unit as an
    /// exact amendment of the affected m- and o-layer tilt frames: the
    /// fitted slot holding the record's unit absorbs the value delta via
    /// OLS linearity ([`Isb::amend_tick`](regcube_regress::Isb::amend_tick)),
    /// which is the same ISB a refit of the corrected series would
    /// produce (Theorem 3.3 mergeability keeps coarser slots exact too,
    /// because the amendment lands *before* promotion or is applied to
    /// the promoted slot directly). The amendment is reported through
    /// the next [`UnitReport::late_amendments`] and fanned out to the
    /// alarm sinks.
    fn amend_late(&mut self, unit: i64, record: &RawRecord) -> Result<()> {
        let m_key = self.ingestor.project_to_m(&record.ids);
        let o_key = CellKey::new(project_key(
            &self.schema,
            &self.m_layer,
            m_key.ids(),
            &self.o_layer,
        ));
        let (tick, delta) = (record.tick, record.value);
        let amend = |m: &Isb| m.amend_tick(tick, delta).map_err(TiltError::Merge);
        let m_frame = ensure_backfilled_frame(
            &mut self.frames,
            &self.tilt_spec,
            &m_key,
            self.units_closed,
            self.ticks_per_unit,
        )?;
        let m_level = match m_frame
            .amend_slot(unit as u64, amend)
            .map_err(StreamError::from)?
        {
            AmendOutcome::Amended { level, .. } => level,
            AmendOutcome::Expired => {
                // The unit already rolled off the coarsest tilt level:
                // deterministic drop, same accounting as beyond-lateness.
                self.reorder.as_mut().expect("reorder enabled").count_drop();
                return Ok(());
            }
        };
        let o_frame = ensure_backfilled_frame(
            &mut self.o_frames,
            &self.tilt_spec,
            &o_key,
            self.units_closed,
            self.ticks_per_unit,
        )?;
        let mut old_o_measure: Option<Isb> = None;
        let (o_level, amended_slot) = match o_frame
            .amend_slot(unit as u64, |m| {
                old_o_measure = Some(*m);
                amend(m)
            })
            .map_err(StreamError::from)?
        {
            AmendOutcome::Amended { level, slot_unit } => (level, Some((level, slot_unit))),
            // Same spec, same clock: if the m-frame still holds the
            // unit, so does the o-frame.
            AmendOutcome::Expired => (m_level, None),
        };
        self.pending_amendments.push(LateAmendment {
            m_cell: m_key,
            o_cell: o_key.clone(),
            unit: unit as u64,
            tick,
            delta,
            m_level,
            o_level,
        });
        self.late_amended_total += 1;
        if let (Some(old), Some((level, slot_unit))) = (old_o_measure, amended_slot) {
            self.revise_after_amend(&o_key, level, slot_unit, old);
        }
        Ok(())
    }

    /// Re-screens the o-layer cells a late amendment touched and emits
    /// typed [`AlarmRevision`]s for every verdict that changed.
    ///
    /// Scoring mirrors the time-travel drill exactly (one reference
    /// model everywhere): the amended slot is scored against its
    /// predecessor at the same tilt level — whose measure the amendment
    /// did not change — and its **successor** slot is re-screened too,
    /// because the amendment changed *its* reference. When a revised
    /// slot is the frontier (the last closed unit at the finest level),
    /// the engine's own alarm state — [`UnitReport::alarms`] as
    /// captured in [`last_alarms`] and every later snapshot — is
    /// patched in place so published views never contradict the
    /// amended frames.
    ///
    /// [`last_alarms`]: CubeSnapshot::alarms
    fn revise_after_amend(
        &mut self,
        o_key: &CellKey,
        level: usize,
        slot_unit: u64,
        old_measure: Isb,
    ) {
        let Some(frame) = self.o_frames.get(o_key) else {
            return;
        };
        let Ok(slots) = frame.slots(level) else {
            return;
        };
        let Some(idx) = slots.iter().position(|s| s.unit == slot_unit) else {
            return;
        };
        let threshold = self.policy.threshold_for(&self.o_layer);
        let mode = self.policy.ref_mode();
        let new_measure = slots[idx].measure;
        let prev = idx.checked_sub(1).map(|i| slots[i].measure);
        let mut revised: Vec<(AlarmRevision, Isb)> = Vec::new();
        // The amended slot itself: same reference, new measure.
        if let Some(rev) = classify_revision(
            self.o_layer.clone(),
            o_key.clone(),
            slot_unit,
            level,
            mode.score(&old_measure, prev.as_ref()),
            mode.score(&new_measure, prev.as_ref()),
            threshold,
        ) {
            revised.push((rev, new_measure));
        }
        // The successor slot: same measure, new reference.
        if let Some(succ) = slots.get(idx + 1) {
            if let Some(rev) = classify_revision(
                self.o_layer.clone(),
                o_key.clone(),
                succ.unit,
                level,
                mode.score(&succ.measure, Some(&old_measure)),
                mode.score(&succ.measure, Some(&new_measure)),
                threshold,
            ) {
                revised.push((rev, succ.measure));
            }
        }
        for (rev, measure) in revised {
            self.patch_frontier_alarms(&rev, measure, threshold);
            self.pending_revisions.push(rev);
        }
    }

    /// Applies one revision to [`Self::last_alarms`] when it targets the
    /// frontier (finest-level slot of the last closed unit) — the alarm
    /// list captured into snapshots and unit reports must agree with
    /// the amended frames it is published alongside.
    fn patch_frontier_alarms(&mut self, rev: &AlarmRevision, measure: Isb, threshold: f64) {
        let frontier = self
            .last_closed_unit
            .is_some_and(|u| u >= 0 && rev.level() == 0 && rev.unit() == u as u64);
        if !frontier {
            return;
        }
        match rev {
            AlarmRevision::Retracted { cell, .. } => {
                self.last_alarms.retain(|a| &a.key != cell);
            }
            AlarmRevision::Raised {
                cell, new_score, ..
            } => {
                if new_score.is_finite() {
                    self.last_alarms.retain(|a| &a.key != cell);
                    self.last_alarms.push(Alarm {
                        key: cell.clone(),
                        measure,
                        score: *new_score,
                        threshold,
                    });
                }
            }
            AlarmRevision::Rescored {
                cell, new_score, ..
            } => {
                if let Some(alarm) = self.last_alarms.iter_mut().find(|a| &a.key == cell) {
                    alarm.measure = measure;
                    alarm.score = *new_score;
                }
            }
        }
        // Keep the canonical order: hottest first, ties by key.
        self.last_alarms.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.key.cmp(&b.key))
        });
    }

    /// The currently open unit index.
    #[inline]
    pub fn open_unit(&self) -> i64 {
        self.ingestor.open_unit()
    }

    /// Units closed so far.
    #[inline]
    pub fn units_closed(&self) -> u64 {
        self.units_closed
    }

    /// The per-cell tilt frame of an m-layer cell, if the cell has ever
    /// been active.
    pub fn tilt_frame(&self, key: &CellKey) -> Option<&TiltFrame<Isb>> {
        self.frames.get(key)
    }

    /// The most recent cube result.
    ///
    /// # Errors
    /// [`StreamError::Core`] before the first non-empty unit close.
    pub fn cube(&self) -> Result<&CubeResult> {
        if !self.computed {
            return Err(StreamError::from(CoreError::NotMaterialized {
                detail: "no unit with data has been closed yet".into(),
            }));
        }
        Ok(self.cubing.result())
    }

    /// The cubing strategy driving the cube (e.g. to read its
    /// [`stats`](CubingEngine::stats)).
    pub fn cubing(&self) -> &E {
        &self.cubing
    }

    /// Registers an alarm sink after construction (the fluent path is
    /// [`EngineConfig::with_sinks`]). The sink starts receiving deltas
    /// with the next closed non-empty unit.
    pub fn add_sink(&mut self, sink: SharedSink) {
        self.sinks.push(sink);
    }

    /// Number of registered alarm sinks.
    pub fn sink_count(&self) -> usize {
        self.sinks.len()
    }

    /// Closes the open unit and performs the per-unit pipeline.
    ///
    /// # Errors
    /// Propagates substrate failures; an empty unit (no records at all)
    /// yields a report with no alarms and leaves the cube untouched.
    pub fn close_unit(&mut self) -> Result<UnitReport> {
        // Watermark mode: drain the open unit's buffered records into
        // the ingestor in canonical order — the same order every arrival
        // permutation produces, so the fitted ISBs are bit-identical to
        // sorted replay.
        if let Some(st) = self.reorder.as_mut() {
            let open = self.ingestor.open_unit();
            for record in st.take_unit(open) {
                self.ingestor.ingest(&record)?;
            }
        }
        let (unit, window) = (self.ingestor.open_unit(), self.ingestor.open_window());
        let (_, cells) = self.ingestor.close_unit()?;
        self.units_closed += 1;

        // Tilt maintenance for the m-layer: active cells push their unit
        // ISB; known but silent cells push a zero-usage fill.
        push_unit_into_frames(
            &mut self.frames,
            &self.tilt_spec,
            &cells,
            unit,
            window,
            self.ticks_per_unit,
        )?;

        if cells.is_empty() {
            // O-layer frames must stay contiguous with the global clock
            // through empty units too: skipping the zero fill here left
            // a gap that failed the next non-empty unit's o-frame push
            // with a spurious out-of-order error.
            push_unit_into_frames(
                &mut self.o_frames,
                &self.tilt_spec,
                &[],
                unit,
                window,
                self.ticks_per_unit,
            )?;
            let late_amendments = std::mem::take(&mut self.pending_amendments);
            let alarm_revisions = std::mem::take(&mut self.pending_revisions);
            let late_dropped = self
                .reorder
                .as_mut()
                .map_or(0, ReorderState::take_dropped_since_report);
            let mut sink_errors = self.sinks.dispatch_amendments(&late_amendments);
            sink_errors.extend(self.sinks.dispatch_revisions(&alarm_revisions));
            self.last_alarms.clear();
            self.last_closed_unit = Some(unit);
            return Ok(UnitReport {
                unit,
                m_cells: 0,
                alarms: Vec::new(),
                exception_cells: 0,
                recompute_time: Duration::ZERO,
                diff: None,
                cube_delta: None,
                sink_errors,
                drill_replayed_cuboids: 0,
                drill_skipped_cuboids: 0,
                rows_folded_simd: 0,
                rows_folded_scalar: 0,
                keys_interned: 0,
                epochs_reclaimed: 0,
                arena_alloc_calls: 0,
                arena_bytes_retained: 0,
                late_amendments,
                alarm_revisions,
                late_dropped,
                snapshot_epoch: self.units_closed,
            });
        }

        // The unit's tuples open a new cube unit in the engine (their
        // window differs from the previous unit's).
        let tuples = Ingestor::to_mtuples(&cells);
        let started = Instant::now();
        let mut delta = self
            .cubing
            .ingest_unit(&tuples)
            .map_err(StreamError::from)?;
        // The built-in engines guarantee sorted deltas (the trait's
        // sorted-delta contract) and `sort_cells` skips after one O(n)
        // verification; only foreign `CubingEngine` backends that
        // violate the contract pay the sort before sinks observe the
        // delta.
        delta.sort_cells();
        self.computed = true;
        let recompute_time = started.elapsed();

        // O-layer alarms with the policy's reference mode.
        let result = self.cubing.result();
        let policy = result.policy().clone();
        let o_layer = result.layers().o_layer().clone();
        let threshold = policy.threshold_for(&o_layer);
        let mut alarms = Vec::new();
        let mut new_prev = FxHashMap::default();
        for (key, measure) in result.o_table() {
            let prev = self.prev_o_layer.get(key);
            let score = policy.ref_mode().score(measure, prev);
            if score >= threshold {
                alarms.push(Alarm {
                    key: key.clone(),
                    measure: *measure,
                    score,
                    threshold,
                });
            }
            new_prev.insert(key.clone(), *measure);
        }
        self.prev_o_layer = new_prev;
        alarms.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.key.cmp(&b.key))
        });

        let diff = self.history.record(result);

        // Fan the unit's late amendments (corrections to earlier units)
        // and then its delta out to the alarm sinks. Sinks see the
        // post-batch cube; their failures are collected, never allowed
        // to fail the unit (the cube is already updated).
        let late_amendments = std::mem::take(&mut self.pending_amendments);
        let alarm_revisions = std::mem::take(&mut self.pending_revisions);
        let mut sink_errors = self.sinks.dispatch_amendments(&late_amendments);
        sink_errors.extend(self.sinks.dispatch_revisions(&alarm_revisions));
        if !self.sinks.is_empty() {
            sink_errors.extend(
                self.sinks
                    .dispatch(&delta, &AlarmContext::new(result, &delta)),
            );
        }

        // O-layer tilt frames: the observation deck at every granularity.
        let o_cells: Vec<(CellKey, Isb)> = result
            .o_table()
            .iter()
            .map(|(k, m)| (k.clone(), *m))
            .collect();
        let exception_cells = result.total_exception_cells();
        push_unit_into_frames(
            &mut self.o_frames,
            &self.tilt_spec,
            &o_cells,
            unit,
            window,
            self.ticks_per_unit,
        )?;

        let late_dropped = self
            .reorder
            .as_mut()
            .map_or(0, ReorderState::take_dropped_since_report);
        let drill_stats = self.cubing.stats();
        self.last_alarms = alarms.clone();
        self.last_closed_unit = Some(unit);
        Ok(UnitReport {
            unit,
            m_cells: cells.len(),
            alarms,
            exception_cells,
            recompute_time,
            diff,
            cube_delta: Some(delta),
            sink_errors,
            drill_replayed_cuboids: drill_stats.drill_replayed_cuboids,
            drill_skipped_cuboids: drill_stats.drill_skipped_cuboids,
            rows_folded_simd: drill_stats.rows_folded_simd,
            rows_folded_scalar: drill_stats.rows_folded_scalar,
            keys_interned: drill_stats.keys_interned,
            epochs_reclaimed: drill_stats.epochs_reclaimed,
            arena_alloc_calls: drill_stats.arena_alloc_calls,
            arena_bytes_retained: drill_stats.arena_bytes_retained,
            late_amendments,
            alarm_revisions,
            late_dropped,
            snapshot_epoch: self.units_closed,
        })
    }

    /// The low watermark in units: everything strictly below it is
    /// final (no in-lateness record can change it any more). With
    /// reordering disabled this is simply the open unit.
    pub fn watermark_unit(&self) -> i64 {
        match &self.reorder {
            Some(st) => self.ingestor.open_unit() - st.config().lateness,
            None => self.ingestor.open_unit(),
        }
    }

    /// Whether the watermark guarantees the open unit is complete —
    /// every record within the allowed lateness of the maximum observed
    /// tick has either been buffered or would arrive as an amendment.
    /// Always `false` with reordering disabled (the caller's clock
    /// decides there).
    pub fn close_ready(&self) -> bool {
        self.reorder
            .as_ref()
            .is_some_and(|st| st.close_ready(self.ingestor.open_unit()))
    }

    /// Closes every unit the watermark has sealed (see
    /// [`close_ready`](Self::close_ready)) and returns their reports —
    /// the watermark-driven replacement for calling
    /// [`close_unit`](Self::close_unit) on an external clock.
    ///
    /// # Errors
    /// Propagates the first failing close.
    pub fn drain_ready(&mut self) -> Result<Vec<UnitReport>> {
        let mut reports = Vec::new();
        while self.close_ready() {
            reports.push(self.close_unit()?);
        }
        Ok(reports)
    }

    /// Closes units until nothing is left: no buffered records, no open
    /// accumulation, no unreported amendments (end-of-stream flush —
    /// the watermark never seals the trailing units on its own).
    ///
    /// # Errors
    /// Propagates the first failing close.
    pub fn flush(&mut self) -> Result<Vec<UnitReport>> {
        let mut reports = Vec::new();
        loop {
            let open = self.ingestor.open_unit();
            let buffered = self
                .reorder
                .as_ref()
                .and_then(ReorderState::max_buffered_unit)
                .is_some_and(|u| u >= open);
            if !buffered && self.ingestor.open_cells() == 0 && self.pending_amendments.is_empty() {
                break;
            }
            reports.push(self.close_unit()?);
        }
        Ok(reports)
    }

    /// The reordering configuration, if the watermark stage is enabled.
    pub fn reordering(&self) -> Option<&ReorderConfig> {
        self.reorder.as_ref().map(ReorderState::config)
    }

    /// Records dropped for arriving beyond the allowed lateness since
    /// construction (0 with reordering disabled).
    pub fn late_dropped(&self) -> u64 {
        self.reorder.as_ref().map_or(0, ReorderState::dropped_total)
    }

    /// Records currently held in the reordering buffer.
    pub fn buffered_records(&self) -> usize {
        self.reorder
            .as_ref()
            .map_or(0, ReorderState::buffered_records)
    }

    /// Late-record amendments applied to the warehoused tilt frames
    /// since construction (0 with reordering disabled).
    pub fn late_amended(&self) -> u64 {
        self.late_amended_total
    }

    /// The cubing strategy's run statistics with the stream layer's
    /// lateness figures filled in ([`late_dropped`](RunStats::late_dropped),
    /// [`late_amendments`](RunStats::late_amendments),
    /// [`watermark_held_units`](RunStats::watermark_held_units),
    /// [`sources_evicted`](RunStats::sources_evicted)).
    pub fn stats(&self) -> RunStats {
        let mut stats = *self.cubing.stats();
        stats.late_dropped = self.late_dropped();
        stats.late_amendments = self.late_amended_total;
        if let Some(st) = &self.reorder {
            stats.watermark_held_units = st.watermark_held_units();
            stats.sources_evicted = st.sources_evicted();
        }
        stats.snapshots_published = self.snapshots_published.load(Ordering::Relaxed);
        stats
    }

    /// Captures an immutable [`CubeSnapshot`] of everything queryable —
    /// cube, both tilt-ladder families, the last unit's alarms and the
    /// run statistics — as one internally consistent value.
    ///
    /// This is the serving-side publication hook, and the fix for the
    /// engine's query/ingest blocking hazard: every query method on the
    /// engine borrows it, so a dashboard reader polling
    /// [`drill_at`](Self::drill_at) or [`cube`](Self::cube) directly
    /// must serialize with [`ingest`](Self::ingest) /
    /// [`close_unit`](Self::close_unit) — under a lock, readers block
    /// writers. Take a snapshot at each unit boundary instead (as
    /// `regcube_serve` does, behind a double-buffered
    /// epoch-swapped cell) and point readers at it: snapshot queries
    /// return **the same bytes** as the engine-blocking path for every
    /// closed unit — `drill_at`/`drill_history` share one
    /// implementation with the engine, pinned by
    /// `crates/stream/tests/snapshot.rs` — and never touch the engine
    /// again.
    ///
    /// Call it right after [`close_unit`](Self::close_unit) so the
    /// snapshot's [`epoch`](CubeSnapshot::epoch) matches the report's
    /// [`snapshot_epoch`](UnitReport::snapshot_epoch). Each call counts
    /// into [`RunStats::snapshots_published`].
    pub fn snapshot(&self) -> CubeSnapshot {
        self.snapshots_published.fetch_add(1, Ordering::Relaxed);
        CubeSnapshot {
            epoch: self.units_closed,
            unit: self.last_closed_unit,
            schema: self.schema.clone(),
            cube: self.computed.then(|| self.cubing.result().clone()),
            frames: self.frames.clone(),
            o_frames: self.o_frames.clone(),
            tilt_spec: self.tilt_spec.clone(),
            policy: self.policy.clone(),
            m_layer: self.m_layer.clone(),
            o_layer: self.o_layer.clone(),
            alarms: self.last_alarms.clone(),
            stats: self.stats(),
        }
    }

    /// Writes a durable checkpoint of the engine to `path` (see
    /// [`crate::checkpoint::write_checkpoint`]). Restore with
    /// [`EngineConfig::restore`].
    ///
    /// # Errors
    /// [`StreamError::Checkpoint`] for I/O failures or when called
    /// mid-unit in strict-order mode (checkpoint at unit boundaries).
    pub fn write_checkpoint(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        crate::checkpoint::write_checkpoint(self, path)
    }

    /// Serializes the engine's resumable state into checkpoint bytes
    /// (see [`crate::checkpoint::checkpoint_bytes`]).
    ///
    /// # Errors
    /// [`StreamError::Checkpoint`] when called mid-unit in strict-order
    /// mode (checkpoint at unit boundaries).
    pub fn checkpoint_bytes(&self) -> Result<Vec<u8>> {
        crate::checkpoint::checkpoint_bytes(self)
    }

    /// Drills one step down from a retained cell of the current cube
    /// (see [`regcube_core::drill`]).
    ///
    /// # Errors
    /// [`StreamError::Core`] before the first non-empty unit close.
    pub fn drill_children(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Vec<DrillHit>> {
        Ok(drill_children(&self.schema, self.cube()?, cuboid, key))
    }

    /// Finds all retained exceptional descendants of a cell of the
    /// current cube.
    ///
    /// # Errors
    /// [`StreamError::Core`] before the first non-empty unit close.
    pub fn drill_descendants(&self, cuboid: &CuboidSpec, key: &CellKey) -> Result<Vec<DrillHit>> {
        Ok(drill_descendants(&self.schema, self.cube()?, cuboid, key))
    }

    /// The per-window exception history (diffs, chronic conditions).
    pub fn history(&self) -> &CubeHistory {
        &self.history
    }

    /// The tilt frame of an o-layer cell: its regression history at every
    /// granularity the spec registers (e.g. "this city's last day at hour
    /// precision" via [`TiltFrame::merge_level`]).
    pub fn o_layer_frame(&self, key: &CellKey) -> Option<&TiltFrame<Isb>> {
        self.o_frames.get(key)
    }

    /// Time-travel drill: the retained history of one cell at one tilt
    /// granularity, scored with the engine's exception policy against
    /// each slot's predecessor — "was this cell exceptional three hours
    /// ago?" long after the cube moved on. The cell is looked up in the
    /// m-layer frames first, then the o-layer frames; a cell with no
    /// warehoused history yields an empty list. Slots are returned
    /// oldest first; amendments from late records
    /// ([`EngineConfig::with_reordering`]) are visible here immediately.
    ///
    /// # Errors
    /// [`StreamError::Tilt`] for a level the tilt spec does not define.
    pub fn drill_at(&self, level: usize, key: &CellKey) -> Result<Vec<TiltHit>> {
        drill_frames_at(
            &self.frames,
            &self.o_frames,
            &self.tilt_spec,
            &self.policy,
            &self.m_layer,
            &self.o_layer,
            level,
            key,
        )
    }

    /// Time-travel drill across the whole ladder: every retained slot of
    /// the cell from the coarsest granularity down to the finest, each
    /// level scored as in [`drill_at`](Self::drill_at). The
    /// concatenation reads as the cell's full warehoused timeline.
    ///
    /// # Errors
    /// Propagates [`drill_at`](Self::drill_at) failures.
    pub fn drill_history(&self, key: &CellKey) -> Result<Vec<TiltHit>> {
        let mut out = Vec::new();
        for level in (0..self.tilt_spec.num_levels()).rev() {
            out.extend(self.drill_at(level, key)?);
        }
        Ok(out)
    }
}

/// One slot of a time-travel drill ([`OnlineEngine::drill_at`]): a
/// warehoused regression with its exception verdict re-derived from the
/// engine's policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TiltHit {
    /// Tilt level the slot lives at (0 = finest).
    pub level: usize,
    /// The level's name from the [`TiltSpec`] (e.g. `"hour"`).
    pub level_name: String,
    /// The slot's index in level granularity (promoted slots cover
    /// `finest_units_per(level)` fine units each).
    pub slot_unit: u64,
    /// The warehoused regression of the slot's span.
    pub measure: Isb,
    /// The policy score against the previous slot at the same level.
    pub score: f64,
    /// Whether the score passes the layer's threshold.
    pub exceptional: bool,
}

/// Classifies one re-screened slot into a typed [`AlarmRevision`], or
/// `None` when the amendment left the verdict (and, for a still-standing
/// exception, the exact score bits) unchanged. Scores compare by IEEE
/// bits so "unchanged" means bit-identical — the same witness the
/// snapshot suites pin.
#[allow(clippy::too_many_arguments)]
fn classify_revision(
    cuboid: CuboidSpec,
    cell: CellKey,
    unit: u64,
    level: usize,
    old_score: f64,
    new_score: f64,
    threshold: f64,
) -> Option<AlarmRevision> {
    let was = old_score >= threshold;
    let is = new_score >= threshold;
    match (was, is) {
        (true, false) => Some(AlarmRevision::Retracted {
            cuboid,
            cell,
            unit,
            level,
            old_score,
            new_score,
        }),
        (false, true) => Some(AlarmRevision::Raised {
            cuboid,
            cell,
            unit,
            level,
            old_score,
            new_score,
        }),
        (true, true) if old_score.to_bits() != new_score.to_bits() => {
            Some(AlarmRevision::Rescored {
                cuboid,
                cell,
                unit,
                level,
                old_score,
                new_score,
            })
        }
        _ => None,
    }
}

/// Pushes one closed unit into a family of per-cell tilt frames: active
/// cells receive their unit ISB (new cells are zero-backfilled so their
/// timeline starts at the epoch), inactive-but-known cells receive a
/// zero-usage fill. Keeps every frame contiguous with the global clock.
fn push_unit_into_frames(
    frames: &mut FxHashMap<CellKey, TiltFrame<Isb>>,
    spec: &TiltSpec,
    active_cells: &[(CellKey, Isb)],
    unit: i64,
    window: (i64, i64),
    ticks_per_unit: usize,
) -> Result<()> {
    let zero_fill = Isb::new(window.0, window.1, 0.0, 0.0).map_err(StreamError::from)?;
    let mut active: regcube_olap::fxhash::FxHashSet<&CellKey> =
        regcube_olap::fxhash::FxHashSet::default();
    for (key, isb) in active_cells {
        active.insert(key);
        let frame = frames
            .entry(key.clone())
            .or_insert_with(|| TiltFrame::new(spec.clone()));
        if frame.next_unit() == 0 && unit > 0 {
            // Backfill zero slots so the frame timeline matches the
            // global unit clock.
            for u in 0..unit {
                let s = u * ticks_per_unit as i64;
                let fill = Isb::new(s, s + ticks_per_unit as i64 - 1, 0.0, 0.0)
                    .map_err(StreamError::from)?;
                frame.push(fill).map_err(StreamError::from)?;
            }
        }
        frame.push(*isb).map_err(StreamError::from)?;
    }
    let mut retired: Vec<CellKey> = Vec::new();
    for (key, frame) in frames.iter_mut() {
        if !active.contains(key) {
            frame.push(zero_fill).map_err(StreamError::from)?;
            // A ladder that is zero-usage end to end carries nothing the
            // epoch backfill cannot reproduce: retire the frame so
            // transient cells don't pin memory forever. If the cell
            // returns, the recreated frame's replayed zero history
            // expires and promotes identically — the same ladder.
            if frame
                .timeline()
                .iter()
                .all(|(_, slot)| slot.measure.base() == 0.0 && slot.measure.slope() == 0.0)
            {
                retired.push(key.clone());
            }
        }
    }
    for key in retired {
        frames.remove(&key);
    }
    Ok(())
}

/// Looks up (or recreates, zero-backfilled from the epoch) the tilt
/// frame of `key` so a late amendment always has a slot to land in. A
/// frame retired by [`push_unit_into_frames`] had an all-zero ladder, so
/// replaying `units_closed` zero fills reproduces it exactly.
fn ensure_backfilled_frame<'a>(
    frames: &'a mut FxHashMap<CellKey, TiltFrame<Isb>>,
    spec: &TiltSpec,
    key: &CellKey,
    units_closed: u64,
    ticks_per_unit: usize,
) -> Result<&'a mut TiltFrame<Isb>> {
    if !frames.contains_key(key) {
        let mut frame = TiltFrame::new(spec.clone());
        for u in 0..units_closed as i64 {
            let s = u * ticks_per_unit as i64;
            let fill =
                Isb::new(s, s + ticks_per_unit as i64 - 1, 0.0, 0.0).map_err(StreamError::from)?;
            frame.push(fill).map_err(StreamError::from)?;
        }
        frames.insert(key.clone(), frame);
    }
    Ok(frames.get_mut(key).expect("present or just inserted"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_core::RefMode;

    /// 2 dims (depth 2, fanout 2); primitive = m-layer; o-layer = apex;
    /// 4 ticks per unit; small tilt frame.
    fn engine(policy: ExceptionPolicy) -> OnlineEngine {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(policy)
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .build()
        .unwrap()
    }

    fn feed_unit<E: CubingEngine>(e: &mut OnlineEngine<E>, unit: i64, slope: f64) {
        let t0 = unit * 4;
        for t in t0..t0 + 4 {
            e.ingest(&RawRecord::new(vec![0, 0], t, slope * (t - t0) as f64))
                .unwrap();
            e.ingest(&RawRecord::new(vec![3, 2], t, 1.0)).unwrap();
        }
    }

    #[test]
    fn quiet_stream_raises_no_alarms() {
        let mut e = engine(ExceptionPolicy::slope_threshold(1.0));
        feed_unit(&mut e, 0, 0.1);
        let report = e.close_unit().unwrap();
        assert_eq!(report.unit, 0);
        assert_eq!(report.m_cells, 2);
        assert!(report.alarms.is_empty());
        assert_eq!(e.units_closed(), 1);
    }

    #[test]
    fn hot_stream_raises_an_alarm() {
        let mut e = engine(ExceptionPolicy::slope_threshold(1.0));
        feed_unit(&mut e, 0, 2.0);
        let report = e.close_unit().unwrap();
        assert_eq!(report.alarms.len(), 1);
        let alarm = &report.alarms[0];
        assert!(alarm.score >= 1.0);
        assert_eq!(alarm.threshold, 1.0);
        assert_eq!(alarm.key.ids(), &[0, 0], "apex cell");
        assert!(report.diff.is_none(), "first unit has no previous window");
    }

    #[test]
    fn unit_diffs_surface_fresh_and_cleared_exceptions() {
        let mut e = engine(ExceptionPolicy::slope_threshold(1.0));
        // Unit 0: hot; unit 1: identical; unit 2: calm.
        feed_unit(&mut e, 0, 2.0);
        e.close_unit().unwrap();
        feed_unit(&mut e, 1, 2.0);
        let steady = e.close_unit().unwrap();
        let diff = steady.diff.expect("second unit diffs");
        assert!(diff.is_quiet(), "unchanged exceptions: {diff:?}");
        assert!(!diff.persisted.is_empty());

        feed_unit(&mut e, 2, 0.01);
        let calm = e.close_unit().unwrap();
        let diff = calm.diff.expect("third unit diffs");
        assert!(!diff.cleared.is_empty(), "the hot chain recovered");
        assert!(diff.appeared.is_empty());
        assert_eq!(e.history().len(), 3);
        assert!(e.history().chronic_exceptions().is_empty());
    }

    #[test]
    fn o_layer_frames_track_the_observation_deck() {
        let mut e = engine(ExceptionPolicy::never());
        for u in 0..5 {
            feed_unit(&mut e, u, 0.5);
            e.close_unit().unwrap();
        }
        // The apex o-cell has a frame spanning all 5 units (4 ticks each).
        let apex = CellKey::new(vec![0, 0]);
        let frame = e.o_layer_frame(&apex).expect("o-frame exists");
        assert_eq!(frame.next_unit(), 5);
        let merged = frame.merge_all().unwrap().unwrap();
        assert_eq!(merged.interval(), (0, 19));
        // The per-unit sawtooth has a strong within-unit trend but a flat
        // cross-unit one; the newest fine slot shows the within-unit ramp.
        let newest = frame.merge_recent(0, 1).unwrap().unwrap();
        assert!(newest.slope() > 0.4, "slope {}", newest.slope());
        assert!(merged.slope().abs() < newest.slope());
        // Unknown o-cells have no frame.
        assert!(e.o_layer_frame(&CellKey::new(vec![9, 9])).is_none());
    }

    #[test]
    fn slot_delta_mode_fires_on_change_not_level() {
        let policy = ExceptionPolicy::slope_threshold(1.0).with_ref_mode(RefMode::SlotDelta);
        let mut e = engine(policy);
        // Unit 0: steady strong trend. First unit: delta falls back to own
        // slope -> alarm.
        feed_unit(&mut e, 0, 2.0);
        let r0 = e.close_unit().unwrap();
        assert_eq!(r0.alarms.len(), 1);
        // Unit 1: the *same* strong trend -> delta ≈ 0 -> no alarm.
        feed_unit(&mut e, 1, 2.0);
        let r1 = e.close_unit().unwrap();
        assert!(r1.alarms.is_empty(), "steady trend must not re-alarm");
        // Unit 2: trend collapses -> large delta -> alarm.
        feed_unit(&mut e, 2, -0.5);
        let r2 = e.close_unit().unwrap();
        assert_eq!(r2.alarms.len(), 1);
    }

    #[test]
    fn tilt_frames_track_cells_across_units() {
        let mut e = engine(ExceptionPolicy::never());
        feed_unit(&mut e, 0, 0.5);
        e.close_unit().unwrap();
        // Unit 1: only cell (0,0) active; (3,2) gets a zero fill.
        let t0 = 4;
        for t in t0..t0 + 4 {
            e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
        }
        e.close_unit().unwrap();

        let f_active = e.tilt_frame(&CellKey::new(vec![0, 0])).unwrap();
        assert_eq!(f_active.next_unit(), 2);
        let f_idle = e.tilt_frame(&CellKey::new(vec![3, 2])).unwrap();
        assert_eq!(f_idle.next_unit(), 2);
        let merged = f_idle.merge_all().unwrap().unwrap();
        assert_eq!(merged.interval(), (0, 7));
        // Unknown cells have no frame.
        assert!(e.tilt_frame(&CellKey::new(vec![1, 1])).is_none());
    }

    #[test]
    fn late_cells_get_backfilled_frames() {
        let mut e = engine(ExceptionPolicy::never());
        feed_unit(&mut e, 0, 0.5);
        e.close_unit().unwrap();
        // A brand-new cell appears in unit 1.
        for t in 4..8 {
            e.ingest(&RawRecord::new(vec![1, 1], t, 2.0)).unwrap();
            e.ingest(&RawRecord::new(vec![0, 0], t, 0.1)).unwrap();
        }
        e.close_unit().unwrap();
        let f = e.tilt_frame(&CellKey::new(vec![1, 1])).unwrap();
        let merged = f.merge_all().unwrap().unwrap();
        assert_eq!(merged.interval(), (0, 7), "backfilled from the epoch");
    }

    #[test]
    fn empty_units_are_benign() {
        let mut e = engine(ExceptionPolicy::always());
        let report = e.close_unit().unwrap();
        assert_eq!(report.m_cells, 0);
        assert!(report.alarms.is_empty());
        assert!(e.cube().is_err(), "no cube before the first active unit");
        // Next unit works normally.
        feed_unit(&mut e, 1, 0.2);
        let r1 = e.close_unit().unwrap();
        assert_eq!(r1.m_cells, 2);
        assert!(e.cube().is_ok());
    }

    /// Compile-time Send audit: shards move engines to worker threads,
    /// so every cubing backend (and the type-erased box) must be Send.
    #[test]
    fn engines_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<MoCubingEngine>();
        assert_send::<PopularPathEngine>();
        assert_send::<ColumnarCubingEngine>();
        assert_send::<BoxedEngine>();
        assert_send::<ShardedEngine<MoCubingEngine>>();
        assert_send::<ShardedEngine<PopularPathEngine>>();
        assert_send::<ShardedEngine<ColumnarCubingEngine>>();
        assert_send::<OnlineEngine<BoxedEngine>>();
        assert_send::<OnlineEngine<ShardedEngine<MoCubingEngine>>>();
        assert_send::<OnlineEngine<ShardedEngine<ColumnarCubingEngine>>>();
    }

    #[test]
    fn sharded_build_matches_unsharded_reports() {
        // The same stream through 1 and 4 shards: every report must
        // agree on alarms (score/keys) and exception cells.
        let make = |shards: usize| {
            let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
            EngineConfig::new(
                schema,
                CuboidSpec::new(vec![0, 0]),
                CuboidSpec::new(vec![2, 2]),
            )
            .with_policy(ExceptionPolicy::slope_threshold(1.0))
            .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
            .with_ticks_per_unit(4)
            .with_shards(shards)
            .build()
            .unwrap()
        };
        let (mut single, mut sharded) = (make(1), make(4));
        for unit in 0..3 {
            let slope = if unit == 1 { 2.0 } else { 0.1 };
            feed_unit(&mut single, unit, slope);
            feed_unit(&mut sharded, unit, slope);
            let (a, b) = (single.close_unit().unwrap(), sharded.close_unit().unwrap());
            assert_eq!(a.m_cells, b.m_cells, "unit {unit}");
            assert_eq!(a.exception_cells, b.exception_cells, "unit {unit}");
            assert_eq!(a.alarms.len(), b.alarms.len(), "unit {unit}");
            for (x, y) in a.alarms.iter().zip(&b.alarms) {
                assert_eq!(x.key, y.key);
                assert!((x.score - y.score).abs() < 1e-9);
            }
            // Deltas are sorted, so they compare directly.
            let (da, db) = (a.cube_delta.unwrap(), b.cube_delta.unwrap());
            assert_eq!(da.appeared, db.appeared, "unit {unit}");
            assert_eq!(da.cleared, db.cleared, "unit {unit}");
        }
    }

    #[test]
    fn columnar_backend_matches_row_reports() {
        // The same stream through the row and columnar backends (and a
        // sharded columnar run): identical alarms, exception counts and
        // deltas unit after unit.
        let make = |backend: Backend, shards: usize| {
            let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
            EngineConfig::new(
                schema,
                CuboidSpec::new(vec![0, 0]),
                CuboidSpec::new(vec![2, 2]),
            )
            .with_policy(ExceptionPolicy::slope_threshold(1.0))
            .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
            .with_ticks_per_unit(4)
            .with_backend(backend)
            .with_shards(shards)
            .build()
            .unwrap()
        };
        let mut row = make(Backend::Row, 1);
        let mut col = make(Backend::Columnar, 1);
        let mut col_sharded = make(Backend::Columnar, 3);
        for unit in 0..3 {
            let slope = if unit == 1 { 2.0 } else { 0.1 };
            for e in [&mut row, &mut col, &mut col_sharded] {
                feed_unit(e, unit, slope);
            }
            let (a, b, c) = (
                row.close_unit().unwrap(),
                col.close_unit().unwrap(),
                col_sharded.close_unit().unwrap(),
            );
            for (label, other) in [("columnar", &b), ("columnar x3", &c)] {
                assert_eq!(a.m_cells, other.m_cells, "unit {unit} {label}");
                assert_eq!(
                    a.exception_cells, other.exception_cells,
                    "unit {unit} {label}"
                );
                assert_eq!(a.alarms.len(), other.alarms.len(), "unit {unit} {label}");
                for (x, y) in a.alarms.iter().zip(&other.alarms) {
                    assert_eq!(x.key, y.key);
                    assert!((x.score - y.score).abs() < 1e-9);
                }
                let (da, db) = (
                    a.cube_delta.as_ref().unwrap(),
                    other.cube_delta.as_ref().unwrap(),
                );
                assert_eq!(da.appeared, db.appeared, "unit {unit} {label}");
                assert_eq!(da.cleared, db.cleared, "unit {unit} {label}");
            }
        }
    }

    #[test]
    fn columnar_backend_rejects_popular_path() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let err = match EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_algorithm(Algorithm::PopularPath)
        .with_backend(Backend::Columnar)
        .build()
        {
            Ok(_) => panic!("columnar + popular path must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, StreamError::BadConfig { .. }), "{err}");
    }

    #[test]
    fn statically_typed_columnar_builder_works() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_shards(2)
        .build_columnar()
        .unwrap();
        assert_eq!(e.cubing().shards(), 2);
        feed_unit(&mut e, 0, 1.0);
        let report = e.close_unit().unwrap();
        assert_eq!(report.m_cells, 2);
        assert_eq!(e.cube().unwrap().m_layer_cells(), 2);
    }

    #[test]
    fn statically_typed_sharded_builders_work() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_shards(2)
        .build_mo()
        .unwrap();
        assert_eq!(e.cubing().shards(), 2);
        for t in 0..4 {
            e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
            e.ingest(&RawRecord::new(vec![3, 2], t, 2.0)).unwrap();
        }
        let report = e.close_unit().unwrap();
        assert_eq!(report.m_cells, 2);
        assert_eq!(e.cube().unwrap().m_layer_cells(), 2);
    }

    #[test]
    fn sinks_consume_every_unit_delta() {
        use regcube_core::alarm::{self, AlarmLog, DashboardSummary, SharedSink};
        let log = alarm::shared(AlarmLog::new(32));
        let dash = alarm::shared(DashboardSummary::new());
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(ExceptionPolicy::slope_threshold(1.0))
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_sinks([log.clone() as SharedSink, dash.clone() as SharedSink])
        .build()
        .unwrap();
        assert_eq!(e.sink_count(), 2);

        // Unit 0 hot, unit 1 calm: one full episode.
        feed_unit(&mut e, 0, 2.0);
        let r0 = e.close_unit().unwrap();
        assert!(r0.sink_errors.is_empty());
        feed_unit(&mut e, 1, 0.0);
        e.close_unit().unwrap();

        let log = log.lock().unwrap();
        assert!(log.opened_total() > 0);
        assert_eq!(log.open_count(), 0, "calm unit closed every episode");
        for ep in log.closed_episodes() {
            assert_eq!(ep.raised_at, 0);
            assert_eq!(ep.cleared_at, Some(1));
        }
        let dash = dash.lock().unwrap();
        assert_eq!(dash.units_seen(), 2);
        assert_eq!(dash.active_cells(), 0);
        assert_eq!(dash.appeared_total(), dash.cleared_total());
    }

    /// A foreign engine that violates the sorted-delta contract: wraps
    /// Algorithm 1 but reverses the transition lists. The stream layer
    /// must re-sort before sinks observe the delta.
    struct UnsortedEngine(MoCubingEngine);
    impl CubingEngine for UnsortedEngine {
        fn algorithm(&self) -> regcube_core::result::Algorithm {
            self.0.algorithm()
        }
        fn ingest_unit(
            &mut self,
            tuples: &[regcube_core::MTuple],
        ) -> regcube_core::Result<UnitDelta> {
            let mut delta = self.0.ingest_unit(tuples)?;
            delta.appeared.reverse();
            delta.cleared.reverse();
            Ok(delta)
        }
        fn result(&self) -> &regcube_core::CubeResult {
            self.0.result()
        }
        fn stats(&self) -> &regcube_core::RunStats {
            self.0.stats()
        }
    }

    #[test]
    fn unsorted_foreign_engines_still_deliver_sorted_deltas() {
        use regcube_core::alarm::{AlarmContext, AlarmSink, SharedSink};
        use regcube_core::CoreError;

        /// Records what it observes; fails if a delta arrives unsorted.
        struct SortAsserting {
            deltas_seen: usize,
        }
        impl AlarmSink for SortAsserting {
            fn name(&self) -> &'static str {
                "sort-asserting"
            }
            fn on_unit(
                &mut self,
                delta: &UnitDelta,
                _ctx: &AlarmContext<'_>,
            ) -> regcube_core::Result<()> {
                for list in [&delta.appeared, &delta.cleared] {
                    if list.windows(2).any(|w| w[0] > w[1]) {
                        return Err(CoreError::BadInput {
                            detail: "unsorted delta reached a sink".into(),
                        });
                    }
                }
                self.deltas_seen += 1;
                Ok(())
            }
        }

        let sink = regcube_core::alarm::shared(SortAsserting { deltas_seen: 0 });
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(ExceptionPolicy::slope_threshold(0.5))
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_sink(sink.clone() as SharedSink)
        .build_with(|schema, layers, policy| {
            MoCubingEngine::transient(schema, layers, policy).map(UnsortedEngine)
        })
        .unwrap();

        for unit in 0..3 {
            feed_unit(&mut e, unit, if unit == 1 { 2.0 } else { 0.1 });
            let report = e.close_unit().unwrap();
            assert!(report.sink_errors.is_empty(), "unit {unit}");
            // The report's delta is the re-sorted one, too.
            let delta = report.cube_delta.unwrap();
            for list in [&delta.appeared, &delta.cleared] {
                assert!(list.windows(2).all(|w| w[0] <= w[1]));
            }
        }
        assert_eq!(sink.lock().unwrap().deltas_seen, 3);
    }

    #[test]
    fn failing_sinks_surface_once_without_poisoning_the_unit() {
        use regcube_core::alarm::{self, AlarmContext, AlarmLog, AlarmSink, SharedSink};
        use regcube_core::CoreError;

        struct AlwaysFails;
        impl AlarmSink for AlwaysFails {
            fn name(&self) -> &'static str {
                "always-fails"
            }
            fn on_unit(&mut self, _: &UnitDelta, _: &AlarmContext<'_>) -> regcube_core::Result<()> {
                Err(CoreError::BadInput {
                    detail: "broken sink".into(),
                })
            }
        }

        let log = alarm::shared(AlarmLog::new(8));
        let mut e = engine(ExceptionPolicy::slope_threshold(1.0));
        e.add_sink(alarm::shared(AlwaysFails) as SharedSink);
        e.add_sink(log.clone() as SharedSink);

        feed_unit(&mut e, 0, 2.0);
        let report = e.close_unit().unwrap();
        // The unit succeeded: delta applied, alarms raised, one error.
        assert_eq!(report.alarms.len(), 1);
        assert!(report.cube_delta.is_some());
        assert_eq!(report.sink_errors.len(), 1);
        assert_eq!(report.sink_errors[0].sink, "always-fails");
        assert!(report.sink_errors[0].message.contains("broken sink"));
        // Later sinks in the set still ran.
        assert!(log.lock().unwrap().opened_total() > 0);
        // The engine keeps working (and keeps surfacing one error per unit).
        feed_unit(&mut e, 1, 0.1);
        let r1 = e.close_unit().unwrap();
        assert_eq!(r1.sink_errors.len(), 1);
        assert!(e.cube().is_ok());
    }

    /// The reorder-enabled twin of [`engine`].
    fn reorder_engine(cap: usize, lateness: i64) -> OnlineEngine {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(ExceptionPolicy::slope_threshold(1.0))
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_reordering(cap, lateness)
        .build()
        .unwrap()
    }

    /// The sorted 6-unit stream the watermark tests permute: two cells
    /// per tick, unit 3 hot.
    fn sorted_stream() -> Vec<RawRecord> {
        let mut records = Vec::new();
        for unit in 0..6i64 {
            let slope = if unit == 3 { 2.0 } else { 0.1 };
            let t0 = unit * 4;
            for t in t0..t0 + 4 {
                records.push(RawRecord::new(vec![0, 0], t, slope * (t - t0) as f64));
                records.push(RawRecord::new(vec![3, 2], t, 1.0));
            }
        }
        records
    }

    #[test]
    fn watermark_reordered_stream_is_bit_identical_to_sorted_replay() {
        // Baseline: the strictly-ordered engine on the sorted stream
        // with explicit unit-boundary closes.
        let mut sorted = engine(ExceptionPolicy::slope_threshold(1.0));
        let mut sorted_reports = Vec::new();
        for (i, r) in sorted_stream().iter().enumerate() {
            if i > 0 && i % 8 == 0 {
                sorted_reports.push(sorted.close_unit().unwrap());
            }
            sorted.ingest(r).unwrap();
        }
        sorted_reports.push(sorted.close_unit().unwrap());

        // Out-of-order run: reverse each 2-unit chunk (displacement of
        // up to 2 units — within the allowed lateness), watermark-driven
        // closes plus a final flush.
        let mut shuffled = sorted_stream();
        for chunk in shuffled.chunks_mut(16) {
            chunk.reverse();
        }
        let mut e = reorder_engine(4, 2);
        let mut reports = Vec::new();
        for r in &shuffled {
            e.ingest(r).unwrap();
            reports.extend(e.drain_ready().unwrap());
        }
        reports.extend(e.flush().unwrap());
        assert_eq!(e.buffered_records(), 0);
        assert_eq!(e.late_dropped(), 0, "everything was within lateness");

        assert_eq!(reports.len(), sorted_reports.len());
        for (a, b) in reports.iter().zip(&sorted_reports) {
            assert_eq!(a.unit, b.unit);
            assert_eq!(a.m_cells, b.m_cells, "unit {}", a.unit);
            assert_eq!(a.alarms, b.alarms, "unit {}", a.unit);
            assert!(a.late_amendments.is_empty());
            let (da, db) = (a.cube_delta.as_ref(), b.cube_delta.as_ref());
            assert_eq!(da.unwrap().appeared, db.unwrap().appeared);
            assert_eq!(da.unwrap().cleared, db.unwrap().cleared);
        }
        // The warehoused frames are bitwise equal, cell by cell.
        for key in [CellKey::new(vec![0, 0]), CellKey::new(vec![3, 2])] {
            let (fa, fb) = (
                e.tilt_frame(&key).unwrap(),
                sorted.tilt_frame(&key).unwrap(),
            );
            assert_eq!(fa.timeline(), fb.timeline(), "cell {key}");
        }
        // And so is the cube's o-layer.
        let (ca, cb) = (e.cube().unwrap(), sorted.cube().unwrap());
        assert_eq!(ca.o_table().len(), cb.o_table().len());
        for (key, m) in ca.o_table() {
            assert_eq!(cb.o_table().get(key), Some(m), "o-cell {key}");
        }
    }

    #[test]
    fn late_records_amend_closed_units_exactly() {
        let mut e = reorder_engine(4, 2);
        feed_unit(&mut e, 0, 0.5);
        e.close_unit().unwrap();
        feed_unit(&mut e, 1, 0.5);
        e.close_unit().unwrap();

        // A record for closed unit 0 (tick 1) within the lateness of 2.
        e.ingest(&RawRecord::new(vec![0, 0], 1, 8.0)).unwrap();
        feed_unit(&mut e, 2, 0.5);
        let report = e.close_unit().unwrap();
        assert_eq!(report.late_amendments.len(), 1);
        let am = &report.late_amendments[0];
        assert_eq!((am.unit, am.tick, am.delta), (0, 1, 8.0));
        assert_eq!(am.m_cell.ids(), &[0, 0]);
        assert_eq!(am.o_cell.ids(), &[0, 0], "apex o-layer");
        assert_eq!(report.late_dropped, 0);

        // The amended slot is the exact refit of the corrected series:
        // compare against a sorted replay that had the record on time.
        let mut oracle = reorder_engine(4, 2);
        feed_unit(&mut oracle, 0, 0.5);
        oracle.ingest(&RawRecord::new(vec![0, 0], 1, 8.0)).unwrap();
        oracle.close_unit().unwrap();
        feed_unit(&mut oracle, 1, 0.5);
        oracle.close_unit().unwrap();
        feed_unit(&mut oracle, 2, 0.5);
        oracle.close_unit().unwrap();
        for key in [CellKey::new(vec![0, 0]), CellKey::new(vec![3, 2])] {
            let (fa, fb) = (
                e.tilt_frame(&key).unwrap(),
                oracle.tilt_frame(&key).unwrap(),
            );
            let (ta, tb) = (fa.timeline(), fb.timeline());
            assert_eq!(ta.len(), tb.len(), "cell {key}");
            for ((la, sa), (lb, sb)) in ta.iter().zip(&tb) {
                assert_eq!((la, sa.unit), (lb, sb.unit));
                assert!(
                    sa.measure.approx_eq(&sb.measure, 1e-9),
                    "cell {key}: {:?} vs {:?}",
                    sa.measure,
                    sb.measure
                );
            }
        }
        let (oa, ob) = (
            e.o_layer_frame(&CellKey::new(vec![0, 0])).unwrap(),
            oracle.o_layer_frame(&CellKey::new(vec![0, 0])).unwrap(),
        );
        for ((_, sa), (_, sb)) in oa.timeline().iter().zip(&ob.timeline()) {
            assert!(sa.measure.approx_eq(&sb.measure, 1e-9));
        }
    }

    #[test]
    fn beyond_lateness_records_are_counted_never_silent() {
        let mut e = reorder_engine(4, 1);
        for unit in 0..3 {
            feed_unit(&mut e, unit, 0.5);
            e.close_unit().unwrap();
        }
        // Open unit is 3, lateness 1: unit 1 and older are beyond.
        e.ingest(&RawRecord::new(vec![0, 0], 4, 1.0)).unwrap(); // unit 1
        e.ingest(&RawRecord::new(vec![0, 0], 0, 1.0)).unwrap(); // unit 0
        e.ingest(&RawRecord::new(vec![0, 0], -5, 1.0)).unwrap(); // pre-epoch
        assert_eq!(e.late_dropped(), 3);
        feed_unit(&mut e, 3, 0.5);
        let report = e.close_unit().unwrap();
        assert_eq!(report.late_dropped, 3);
        assert!(report.late_amendments.is_empty());
        assert_eq!(e.stats().late_dropped, 3);
        // The next report starts a fresh per-report count.
        feed_unit(&mut e, 4, 0.5);
        assert_eq!(e.close_unit().unwrap().late_dropped, 0);
        assert_eq!(e.late_dropped(), 3, "the cumulative figure persists");
    }

    #[test]
    fn reorder_buffer_overflow_is_an_error_not_a_loss() {
        let mut e = reorder_engine(2, 1);
        e.ingest(&RawRecord::new(vec![0, 0], 0, 1.0)).unwrap(); // unit 0
        e.ingest(&RawRecord::new(vec![0, 0], 5, 1.0)).unwrap(); // unit 1
        let err = e.ingest(&RawRecord::new(vec![0, 0], 9, 1.0)).unwrap_err();
        assert!(matches!(err, StreamError::ReorderOverflow { .. }), "{err}");
        // Draining the ready unit frees a slot.
        e.drain_ready().unwrap();
        e.ingest(&RawRecord::new(vec![0, 0], 9, 1.0)).unwrap();
    }

    #[test]
    fn all_zero_frames_are_retired_and_recreated_identically() {
        let mut e = engine(ExceptionPolicy::never());
        // Unit 0: cell (0,0) has usage; cell (3,2) exists but is all
        // zero (its records carry value 0).
        for t in 0..4 {
            e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
            e.ingest(&RawRecord::new(vec![3, 2], t, 0.0)).unwrap();
        }
        e.close_unit().unwrap();
        assert!(e.tilt_frame(&CellKey::new(vec![3, 2])).is_some());
        // Unit 1: (3,2) goes silent -> its all-zero ladder is retired.
        for t in 4..8 {
            e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
        }
        e.close_unit().unwrap();
        assert!(
            e.tilt_frame(&CellKey::new(vec![3, 2])).is_none(),
            "all-zero ladder reclaimed"
        );
        assert!(
            e.tilt_frame(&CellKey::new(vec![0, 0])).is_some(),
            "cells with history stay"
        );
        // Unit 2: the cell returns; its recreated frame spans the epoch.
        for t in 8..12 {
            e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
            e.ingest(&RawRecord::new(vec![3, 2], t, 2.0)).unwrap();
        }
        e.close_unit().unwrap();
        let f = e.tilt_frame(&CellKey::new(vec![3, 2])).unwrap();
        assert_eq!(f.next_unit(), 3);
        assert_eq!(f.merge_all().unwrap().unwrap().interval(), (0, 11));
    }

    #[test]
    fn o_frames_stay_contiguous_through_empty_units() {
        let mut e = engine(ExceptionPolicy::never());
        feed_unit(&mut e, 0, 0.5);
        e.close_unit().unwrap();
        // An empty unit used to skip the o-frame zero fill, making this
        // close fail with a tilt out-of-order error.
        e.close_unit().unwrap();
        feed_unit(&mut e, 2, 0.5);
        e.close_unit().unwrap();
        let apex = CellKey::new(vec![0, 0]);
        let frame = e.o_layer_frame(&apex).expect("o-frame survives");
        assert_eq!(frame.next_unit(), 3);
        assert_eq!(frame.merge_all().unwrap().unwrap().interval(), (0, 11));
    }

    #[test]
    fn history_depth_is_validated_and_honored() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let bad = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_history_depth(0)
        .build();
        assert!(matches!(bad, Err(StreamError::BadConfig { .. })));

        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_history_depth(2)
        .build()
        .unwrap();
        for unit in 0..4 {
            feed_unit(&mut e, unit, 0.5);
            e.close_unit().unwrap();
        }
        assert_eq!(e.history().len(), 2, "depth bounds the retained windows");
    }

    #[test]
    fn drill_at_time_travels_through_the_ladder() {
        let mut e = reorder_engine(4, 2);
        for unit in 0..3 {
            feed_unit(&mut e, unit, if unit == 1 { 2.0 } else { 0.1 });
            e.close_unit().unwrap();
        }
        // Cell (0,0) resolves to the m-layer frame (m before o). Three
        // units in, nothing has promoted: all three sit at the fine
        // level.
        let key = CellKey::new(vec![0, 0]);
        let fine = e.drill_at(0, &key).unwrap();
        assert_eq!(fine.len(), 3);
        assert_eq!(fine[0].level, 0);
        assert_eq!(fine[0].level_name, "unit");
        assert!(fine.windows(2).all(|w| w[0].slot_unit < w[1].slot_unit));
        // The hot unit is still visible — and still exceptional — after
        // the cube moved on.
        let hot = fine.iter().find(|h| h.slot_unit == 1).expect("unit 1");
        assert!(hot.exceptional, "score {}", hot.score);
        assert!(fine
            .iter()
            .filter(|h| h.slot_unit != 1)
            .all(|h| !h.exceptional));
        // Two more units promote the oldest four into a coarse slot:
        // the hot unit's history now lives one level up.
        for unit in 3..5 {
            feed_unit(&mut e, unit, 0.1);
            e.close_unit().unwrap();
        }
        let coarse = e.drill_at(1, &key).unwrap();
        assert_eq!(coarse.len(), 1);
        assert_eq!(coarse[0].level_name, "coarse");
        assert_eq!(coarse[0].slot_unit, 0, "units 0-3 promoted");
        // The full ladder reads coarsest-to-finest and covers every slot.
        let frame = e.tilt_frame(&key).unwrap();
        let all = e.drill_history(&key).unwrap();
        assert_eq!(all.len(), frame.retained_slots());
        // Unknown cells have no history; unknown levels are an error.
        assert!(e.drill_at(0, &CellKey::new(vec![1, 1])).unwrap().is_empty());
        assert!(e.drill_at(9, &key).is_err());
        assert!(e.drill_at(9, &CellKey::new(vec![1, 1])).is_err());
    }

    #[test]
    fn watermark_accessors_reflect_the_configuration() {
        let e = engine(ExceptionPolicy::never());
        assert!(e.reordering().is_none());
        assert_eq!(e.watermark_unit(), 0);
        assert!(!e.close_ready());

        let mut e = reorder_engine(3, 2);
        assert_eq!(e.reordering().unwrap().capacity, 3);
        assert_eq!(e.watermark_unit(), -2);
        assert!(!e.close_ready());
        e.ingest(&RawRecord::new(vec![0, 0], 13, 1.0)).unwrap(); // unit 3
        assert!(e.close_ready(), "unit 3 seen, lateness 2: unit 0 sealed");
        let reports = e.drain_ready().unwrap();
        assert_eq!(reports.len(), 1, "only unit 0 is sealed");
        assert_eq!(e.open_unit(), 1);
        let tail = e.flush().unwrap();
        assert_eq!(
            tail.last().unwrap().unit,
            3,
            "flush closes through the data"
        );
        assert_eq!(e.buffered_records(), 0);
    }

    #[test]
    fn popular_path_engine_works_too() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        let mut e = EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(ExceptionPolicy::slope_threshold(0.5))
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_algorithm(Algorithm::PopularPath)
        .build()
        .unwrap();
        feed_unit(&mut e, 0, 2.0);
        let report = e.close_unit().unwrap();
        assert_eq!(report.alarms.len(), 1);
        assert_eq!(e.cube().unwrap().algorithm(), Algorithm::PopularPath);
    }
}
