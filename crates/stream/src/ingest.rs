//! Per-unit accumulation of raw records into m-layer regression tuples.
//!
//! Records at the primitive layer are projected to their m-layer ancestor
//! cell (standard-dimension roll-up via the concept hierarchies) and their
//! values accumulated per tick. When the open unit closes, each touched
//! cell's per-tick sums are fitted with OLS and emitted as one
//! [`MTuple`] — the m-layer aggregation Step 1 of both algorithms expects
//! ("the m-layer should be the layer aggregated directly from the stream
//! data").

use crate::error::StreamError;
use crate::record::RawRecord;
use crate::Result;
use regcube_core::MTuple;
use regcube_olap::cell::{project_key, CellKey};
use regcube_olap::fxhash::FxHashMap;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::{Isb, TimeSeries};

/// Accumulates raw records for one m-layer time unit at a time.
#[derive(Debug, Clone)]
pub struct Ingestor {
    schema: CubeSchema,
    primitive: CuboidSpec,
    m_layer: CuboidSpec,
    ticks_per_unit: usize,
    open_unit: i64,
    /// Per-m-cell accumulation: value sum per tick offset of the open unit.
    buffers: FxHashMap<CellKey, Vec<f64>>,
    records_seen: u64,
}

impl Ingestor {
    /// Creates an ingestor.
    ///
    /// # Errors
    /// [`StreamError::BadConfig`] when the primitive layer is not a
    /// descendant-or-equal of the m-layer, or `ticks_per_unit == 0`.
    pub fn new(
        schema: CubeSchema,
        primitive: CuboidSpec,
        m_layer: CuboidSpec,
        ticks_per_unit: usize,
    ) -> Result<Self> {
        if ticks_per_unit == 0 {
            return Err(StreamError::BadConfig {
                detail: "ticks_per_unit must be positive".into(),
            });
        }
        schema.check_cuboid(&primitive).map_err(StreamError::from)?;
        schema.check_cuboid(&m_layer).map_err(StreamError::from)?;
        if !m_layer.is_ancestor_or_equal(&primitive) {
            return Err(StreamError::BadConfig {
                detail: format!("primitive layer {primitive} is not below the m-layer {m_layer}"),
            });
        }
        Ok(Ingestor {
            schema,
            primitive,
            m_layer,
            ticks_per_unit,
            open_unit: 0,
            buffers: FxHashMap::default(),
            records_seen: 0,
        })
    }

    /// The currently open unit index.
    #[inline]
    pub fn open_unit(&self) -> i64 {
        self.open_unit
    }

    /// Repositions the open unit — the checkpoint-restore seam. Only
    /// valid with empty buffers (a restored engine resumes at a unit
    /// boundary); callers in this crate uphold that.
    pub(crate) fn set_open_unit(&mut self, unit: i64) {
        debug_assert!(self.buffers.is_empty(), "repositioning a non-empty unit");
        self.open_unit = unit;
    }

    /// The open unit's tick interval `[first, last]`.
    pub fn open_window(&self) -> (i64, i64) {
        let first = self.open_unit * self.ticks_per_unit as i64;
        (first, first + self.ticks_per_unit as i64 - 1)
    }

    /// Records ingested since construction.
    #[inline]
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Number of distinct m-cells touched in the open unit.
    #[inline]
    pub fn open_cells(&self) -> usize {
        self.buffers.len()
    }

    /// Validates a record's coordinates against the primitive layer
    /// (arity and member range) without touching the open window — the
    /// check the reordering buffer runs *before* admitting a record, so
    /// a malformed record is rejected at arrival time rather than units
    /// later when its buffer drains.
    ///
    /// # Errors
    /// [`StreamError::BadRecord`] for arity/member violations.
    pub fn validate(&self, record: &RawRecord) -> Result<()> {
        if record.ids.len() != self.schema.num_dims() {
            return Err(StreamError::BadRecord {
                detail: format!(
                    "{} ids for {} dimensions",
                    record.ids.len(),
                    self.schema.num_dims()
                ),
            });
        }
        for (d, &id) in record.ids.iter().enumerate() {
            let card = self.schema.dims()[d]
                .hierarchy()
                .cardinality(self.primitive.level(d));
            if id >= card {
                return Err(StreamError::BadRecord {
                    detail: format!("dimension {d} member {id} out of range ({card})"),
                });
            }
        }
        Ok(())
    }

    /// The primitive layer records arrive at (checkpoint fingerprint).
    pub(crate) fn primitive(&self) -> &CuboidSpec {
        &self.primitive
    }

    /// Projects a primitive record's coordinates to its m-layer cell.
    pub(crate) fn project_to_m(&self, ids: &[u32]) -> CellKey {
        CellKey::new(project_key(
            &self.schema,
            &self.primitive,
            ids,
            &self.m_layer,
        ))
    }

    /// Ingests one raw record into the open unit.
    ///
    /// # Errors
    /// * [`StreamError::OutOfWindow`] when the record's tick is outside
    ///   the open unit (close the unit first).
    /// * [`StreamError::BadRecord`] for arity/member violations.
    pub fn ingest(&mut self, record: &RawRecord) -> Result<()> {
        let window = self.open_window();
        if record.tick < window.0 || record.tick > window.1 {
            return Err(StreamError::OutOfWindow {
                tick: record.tick,
                window,
            });
        }
        self.validate(record)?;
        let m_ids = project_key(&self.schema, &self.primitive, &record.ids, &self.m_layer);
        let offset = (record.tick - window.0) as usize;
        let ticks = self.ticks_per_unit;
        let buf = self
            .buffers
            .entry(CellKey::new(m_ids))
            .or_insert_with(|| vec![0.0; ticks]);
        buf[offset] += record.value;
        self.records_seen += 1;
        Ok(())
    }

    /// Closes the open unit: fits one ISB per touched m-cell over the
    /// unit's ticks, advances to the next unit, and returns the tuples
    /// (sorted by key for determinism).
    ///
    /// The close is **error-atomic**: the output is built completely
    /// before any state is mutated, so a failed close leaves the
    /// buffers and the open unit exactly as they were (an earlier
    /// version drained the buffers while fitting — a mid-drain error
    /// discarded the remaining cells and left `open_unit` un-advanced,
    /// corrupting the stream state).
    ///
    /// # Errors
    /// Propagates fit errors (cannot occur for a positive unit width).
    pub fn close_unit(&mut self) -> Result<(i64, Vec<(CellKey, Isb)>)> {
        let (first, _) = self.open_window();
        let unit = self.open_unit;
        let mut out: Vec<(CellKey, Isb)> = Vec::with_capacity(self.buffers.len());
        for (key, values) in self.buffers.iter() {
            let series = TimeSeries::new(first, values.clone()).map_err(StreamError::from)?;
            let isb = Isb::fit(&series).map_err(StreamError::from)?;
            out.push((key.clone(), isb));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        self.buffers.clear();
        self.open_unit += 1;
        Ok((unit, out))
    }

    /// Converts closed-unit cells into the [`MTuple`] form the cubing
    /// algorithms consume.
    pub fn to_mtuples(cells: &[(CellKey, Isb)]) -> Vec<MTuple> {
        cells
            .iter()
            .map(|(k, isb)| MTuple::new(k.ids().to_vec(), *isb))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 dims, depth 2, fanout 2; primitive = m-layer = (2, 2); 4 ticks
    /// per unit.
    fn ingestor() -> Ingestor {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        Ingestor::new(
            schema,
            CuboidSpec::new(vec![2, 2]),
            CuboidSpec::new(vec![2, 2]),
            4,
        )
        .unwrap()
    }

    /// Primitive one level below the m-layer on both dims.
    fn rollup_ingestor() -> Ingestor {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        Ingestor::new(
            schema,
            CuboidSpec::new(vec![2, 2]),
            CuboidSpec::new(vec![1, 1]),
            4,
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        assert!(Ingestor::new(
            schema.clone(),
            CuboidSpec::new(vec![2, 2]),
            CuboidSpec::new(vec![2, 2]),
            0,
        )
        .is_err());
        // Primitive coarser than m-layer is invalid.
        assert!(Ingestor::new(
            schema,
            CuboidSpec::new(vec![1, 1]),
            CuboidSpec::new(vec![2, 2]),
            4,
        )
        .is_err());
    }

    #[test]
    fn per_tick_accumulation_and_fit() {
        let mut ing = ingestor();
        // Cell (0,0): values 1, 2, 3, 4 over ticks 0..3 -> slope 1.
        for t in 0..4 {
            ing.ingest(&RawRecord::new(vec![0, 0], t, (t + 1) as f64))
                .unwrap();
        }
        // Two records on the same tick accumulate.
        ing.ingest(&RawRecord::new(vec![3, 3], 1, 2.0)).unwrap();
        ing.ingest(&RawRecord::new(vec![3, 3], 1, 3.0)).unwrap();
        assert_eq!(ing.open_cells(), 2);
        assert_eq!(ing.records_seen(), 6);

        let (unit, cells) = ing.close_unit().unwrap();
        assert_eq!(unit, 0);
        assert_eq!(cells.len(), 2);
        let (k0, isb0) = &cells[0];
        assert_eq!(k0.ids(), &[0, 0]);
        assert!((isb0.slope() - 1.0).abs() < 1e-12);
        assert_eq!(isb0.interval(), (0, 3));
        // Missing ticks read as zero usage.
        let (_, isb1) = &cells[1];
        assert_eq!(isb1.interval(), (0, 3));
        assert!((isb1.sum_z() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn units_advance_and_windows_shift() {
        let mut ing = ingestor();
        ing.ingest(&RawRecord::new(vec![0, 0], 2, 1.0)).unwrap();
        let _ = ing.close_unit().unwrap();
        assert_eq!(ing.open_unit(), 1);
        assert_eq!(ing.open_window(), (4, 7));
        // Old ticks now rejected; new window accepted.
        assert!(matches!(
            ing.ingest(&RawRecord::new(vec![0, 0], 2, 1.0)),
            Err(StreamError::OutOfWindow { .. })
        ));
        ing.ingest(&RawRecord::new(vec![0, 0], 6, 1.0)).unwrap();
        let (unit, cells) = ing.close_unit().unwrap();
        assert_eq!(unit, 1);
        assert_eq!(cells[0].1.interval(), (4, 7));
    }

    #[test]
    fn primitive_records_roll_up_to_m_cells() {
        let mut ing = rollup_ingestor();
        // L2 members 0 and 1 share L1 parent 0 (fanout 2).
        for t in 0..4 {
            ing.ingest(&RawRecord::new(vec![0, 2], t, 1.0)).unwrap();
            ing.ingest(&RawRecord::new(vec![1, 3], t, 2.0)).unwrap();
        }
        let (_, cells) = ing.close_unit().unwrap();
        // Both primitive streams land in m-cell (0, 1).
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0.ids(), &[0, 1]);
        assert!((cells[0].1.sum_z() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn bad_records_are_rejected() {
        let mut ing = ingestor();
        assert!(matches!(
            ing.ingest(&RawRecord::new(vec![0], 0, 1.0)),
            Err(StreamError::BadRecord { .. })
        ));
        assert!(matches!(
            ing.ingest(&RawRecord::new(vec![0, 9], 0, 1.0)),
            Err(StreamError::BadRecord { .. })
        ));
    }

    #[test]
    fn mtuple_conversion() {
        let mut ing = ingestor();
        ing.ingest(&RawRecord::new(vec![2, 1], 0, 1.0)).unwrap();
        let (_, cells) = ing.close_unit().unwrap();
        let tuples = Ingestor::to_mtuples(&cells);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].ids(), &[2, 1]);
    }
}
