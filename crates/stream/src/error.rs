//! Error type for the stream substrate.

use regcube_core::CoreError;
use regcube_olap::OlapError;
use regcube_regress::RegressError;
use regcube_tilt::TiltError;
use std::fmt;

/// Errors produced by ingestion and the online engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A record's tick falls outside the open time unit.
    OutOfWindow {
        /// The record's tick.
        tick: i64,
        /// The open unit's tick interval.
        window: (i64, i64),
    },
    /// A record's coordinates do not match the primitive layer.
    BadRecord {
        /// Description of the violation.
        detail: String,
    },
    /// The engine configuration is inconsistent.
    BadConfig {
        /// Description of the violation.
        detail: String,
    },
    /// The bounded reordering buffer cannot admit another future unit.
    ReorderOverflow {
        /// The configured capacity in buffered units.
        capacity: usize,
        /// The unit the rejected record belongs to.
        unit: i64,
    },
    /// A checkpoint file is unreadable, torn, corrupt, or belongs to an
    /// incompatible engine configuration. Restoration is all-or-nothing:
    /// this error guarantees no partial state was handed back.
    Checkpoint {
        /// Description of the failure.
        detail: String,
    },
    /// Substrate failure: cube core.
    Core(CoreError),
    /// Substrate failure: OLAP structures.
    Olap(OlapError),
    /// Substrate failure: regression math.
    Regress(RegressError),
    /// Substrate failure: tilt frame.
    Tilt(TiltError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::OutOfWindow { tick, window } => write!(
                f,
                "record tick {tick} outside the open unit [{}, {}]",
                window.0, window.1
            ),
            StreamError::BadRecord { detail } => write!(f, "bad record: {detail}"),
            StreamError::BadConfig { detail } => write!(f, "bad engine config: {detail}"),
            StreamError::ReorderOverflow { capacity, unit } => write!(
                f,
                "reordering buffer full ({capacity} units): cannot buffer unit {unit}; \
                 close ready units or raise the capacity"
            ),
            StreamError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
            StreamError::Core(e) => write!(f, "cube error: {e}"),
            StreamError::Olap(e) => write!(f, "structure error: {e}"),
            StreamError::Regress(e) => write!(f, "regression error: {e}"),
            StreamError::Tilt(e) => write!(f, "tilt frame error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Core(e) => Some(e),
            StreamError::Olap(e) => Some(e),
            StreamError::Regress(e) => Some(e),
            StreamError::Tilt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Core(e)
    }
}

impl From<OlapError> for StreamError {
    fn from(e: OlapError) -> Self {
        StreamError::Olap(e)
    }
}

impl From<RegressError> for StreamError {
    fn from(e: RegressError) -> Self {
        StreamError::Regress(e)
    }
}

impl From<TiltError> for StreamError {
    fn from(e: TiltError) -> Self {
        StreamError::Tilt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources() {
        let cases: Vec<StreamError> = vec![
            StreamError::OutOfWindow {
                tick: 99,
                window: (0, 14),
            },
            StreamError::BadRecord { detail: "x".into() },
            StreamError::BadConfig { detail: "y".into() },
            StreamError::ReorderOverflow {
                capacity: 4,
                unit: 9,
            },
            StreamError::Checkpoint {
                detail: "torn".into(),
            },
            CoreError::BadInput { detail: "z".into() }.into(),
            OlapError::ArityMismatch {
                got: 1,
                expected: 2,
            }
            .into(),
            RegressError::NoInputs.into(),
            TiltError::BadSpec { detail: "w".into() }.into(),
        ];
        for c in &cases {
            assert!(!c.to_string().is_empty());
        }
        assert!(cases[5].source().is_some());
        assert!(cases[0].source().is_none());
        assert!(cases[3].source().is_none());
        assert!(cases[4].source().is_none());
    }
}
