//! Bounded reordering buffer and watermark state for out-of-order
//! streams.
//!
//! The paper's streaming model (Section 4.5) assumes tuples arrive in
//! tick order; real deployments do not deliver that. This module holds
//! the machinery the [`OnlineEngine`](crate::online::OnlineEngine) puts
//! in front of its [`Ingestor`](crate::ingest::Ingestor) when
//! [`EngineConfig::with_reordering`](crate::online::EngineConfig::with_reordering)
//! is set:
//!
//! * a **bounded buffer** holding the records of the open unit and up to
//!   [`ReorderConfig::capacity`] future units — records inside one unit
//!   may arrive in any order, because the buffer re-sorts them into a
//!   canonical order before the unit closes;
//! * a **low watermark** advanced by the maximum observed tick: a unit
//!   is [ready to close](ReorderState::close_ready) once the watermark
//!   guarantees no in-lateness record for it can still arrive;
//! * deterministic **drop accounting** for records older than the
//!   watermark allows ([`ReorderState::count_drop`]) — they surface in
//!   `RunStats::late_dropped`, never silently.
//!
//! The canonical per-unit order — `(tick, ids, value bits)` — is what
//! makes out-of-order ingestion *bit-identical* to sorted replay:
//! floating-point accumulation is order-sensitive, so the buffer imposes
//! one order regardless of arrival order.

use crate::error::StreamError;
use crate::record::RawRecord;
use crate::Result;
use std::collections::BTreeMap;

/// Configuration of the bounded reordering stage.
///
/// Reordering is **enabled** when `capacity > 0`; the default
/// configuration is disabled, which leaves the engine's ingest path
/// byte-identical to the strictly-ordered behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderConfig {
    /// Maximum number of distinct stream units the buffer may hold (the
    /// open unit plus future units). `0` disables reordering entirely.
    pub capacity: usize,
    /// Allowed lateness in units: a record for a closed unit within
    /// `lateness` units of the open one amends the warehoused tilt
    /// frames; older records are counted and dropped.
    pub lateness: i64,
}

impl ReorderConfig {
    /// Creates a configuration (negative lateness clamps to 0).
    pub fn new(capacity: usize, lateness: i64) -> Self {
        ReorderConfig {
            capacity,
            lateness: lateness.max(0),
        }
    }

    /// The disabled configuration: strictly-ordered ingestion.
    pub fn disabled() -> Self {
        ReorderConfig {
            capacity: 0,
            lateness: 0,
        }
    }

    /// Whether the reordering stage is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Reads the process-wide default from `REGCUBE_REORDER_CAP` and
    /// `REGCUBE_REORDER_LATENESS` (used only when the configuration does
    /// not set reordering explicitly — CI's `REGCUBE_REORDER_CAP=0` pass
    /// pins the watermark-off path without disturbing tests that opt
    /// in). Unset or unparsable variables mean disabled.
    pub fn from_env() -> Self {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<i64>().ok())
        };
        let capacity = parse("REGCUBE_REORDER_CAP").unwrap_or(0).max(0) as usize;
        let lateness = parse("REGCUBE_REORDER_LATENESS").unwrap_or(1);
        ReorderConfig::new(capacity, lateness)
    }
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig::disabled()
    }
}

/// The runtime state of the reordering stage: per-unit record buffers,
/// the observed-tick watermark, and drop accounting.
#[derive(Debug, Clone)]
pub struct ReorderState {
    config: ReorderConfig,
    /// Buffered records per unit (the open unit and future units).
    units: BTreeMap<i64, Vec<RawRecord>>,
    /// Largest unit any observed tick belonged to.
    max_seen_unit: Option<i64>,
    /// Beyond-lateness records dropped since construction.
    dropped_total: u64,
    /// Beyond-lateness records dropped since the last unit report.
    dropped_since_report: u64,
}

impl ReorderState {
    /// Creates an empty state for `config`.
    pub fn new(config: ReorderConfig) -> Self {
        ReorderState {
            config,
            units: BTreeMap::new(),
            max_seen_unit: None,
            dropped_total: 0,
            dropped_since_report: 0,
        }
    }

    /// The stage's configuration.
    #[inline]
    pub fn config(&self) -> &ReorderConfig {
        &self.config
    }

    /// Advances the watermark clock with an observed record's unit.
    pub fn observe(&mut self, unit: i64) {
        self.max_seen_unit = Some(self.max_seen_unit.map_or(unit, |m| m.max(unit)));
    }

    /// The largest unit observed so far (from any record, buffered,
    /// amended or dropped).
    #[inline]
    pub fn max_seen_unit(&self) -> Option<i64> {
        self.max_seen_unit
    }

    /// Whether the watermark guarantees `open_unit` is complete: every
    /// record within the allowed lateness of the maximum observed unit
    /// has either arrived or would arrive as an amendment.
    pub fn close_ready(&self, open_unit: i64) -> bool {
        self.max_seen_unit
            .is_some_and(|m| m - self.config.lateness > open_unit)
    }

    /// Buffers a record for `unit` (the open unit or a future one).
    ///
    /// # Errors
    /// [`StreamError::ReorderOverflow`] when admitting the record would
    /// exceed the capacity in distinct buffered units.
    pub fn buffer(&mut self, unit: i64, record: RawRecord) -> Result<()> {
        if let Some(bucket) = self.units.get_mut(&unit) {
            bucket.push(record);
            return Ok(());
        }
        if self.units.len() >= self.config.capacity {
            return Err(StreamError::ReorderOverflow {
                capacity: self.config.capacity,
                unit,
            });
        }
        self.units.insert(unit, vec![record]);
        Ok(())
    }

    /// Removes and returns `unit`'s records in the canonical order
    /// `(tick, ids, value bits)` — identical for every arrival order of
    /// the same multiset, which is what makes reordered ingestion
    /// bit-identical to sorted replay.
    pub fn take_unit(&mut self, unit: i64) -> Vec<RawRecord> {
        let mut records = self.units.remove(&unit).unwrap_or_default();
        records.sort_by(|a, b| {
            (a.tick, &a.ids, a.value.to_bits()).cmp(&(b.tick, &b.ids, b.value.to_bits()))
        });
        records
    }

    /// The largest unit with buffered records, if any.
    pub fn max_buffered_unit(&self) -> Option<i64> {
        self.units.keys().next_back().copied()
    }

    /// Total records currently buffered.
    pub fn buffered_records(&self) -> usize {
        self.units.values().map(Vec::len).sum()
    }

    /// Distinct units currently buffered.
    pub fn buffered_units(&self) -> usize {
        self.units.len()
    }

    /// Counts one beyond-lateness drop.
    pub fn count_drop(&mut self) {
        self.dropped_total += 1;
        self.dropped_since_report += 1;
    }

    /// Beyond-lateness records dropped since construction.
    #[inline]
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Takes the drop count accumulated since the previous call (the
    /// per-unit-report figure).
    pub fn take_dropped_since_report(&mut self) -> u64 {
        std::mem::take(&mut self.dropped_since_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tick: i64, value: f64) -> RawRecord {
        RawRecord::new(vec![0, 0], tick, value)
    }

    #[test]
    fn config_enablement_and_env_default() {
        assert!(!ReorderConfig::disabled().enabled());
        assert!(!ReorderConfig::default().enabled());
        assert!(ReorderConfig::new(4, 2).enabled());
        assert_eq!(ReorderConfig::new(4, -3).lateness, 0, "clamped");
        // No env vars set in the test environment: disabled.
        if std::env::var("REGCUBE_REORDER_CAP").is_err() {
            assert!(!ReorderConfig::from_env().enabled());
        }
    }

    #[test]
    fn watermark_advances_monotonically() {
        let mut st = ReorderState::new(ReorderConfig::new(4, 2));
        assert_eq!(st.max_seen_unit(), None);
        assert!(!st.close_ready(0));
        st.observe(3);
        st.observe(1); // regressions never pull the watermark back
        assert_eq!(st.max_seen_unit(), Some(3));
        // Lateness 2: unit 0 is complete once unit 3 has been seen.
        assert!(st.close_ready(0));
        assert!(!st.close_ready(1));
    }

    #[test]
    fn buffer_caps_distinct_units_not_records() {
        let mut st = ReorderState::new(ReorderConfig::new(2, 1));
        st.buffer(0, rec(0, 1.0)).unwrap();
        st.buffer(0, rec(1, 2.0)).unwrap();
        st.buffer(1, rec(4, 3.0)).unwrap();
        assert_eq!(st.buffered_units(), 2);
        assert_eq!(st.buffered_records(), 3);
        // A third distinct unit overflows...
        let err = st.buffer(2, rec(8, 4.0)).unwrap_err();
        assert!(matches!(err, StreamError::ReorderOverflow { .. }));
        // ...but existing units keep admitting records.
        st.buffer(1, rec(5, 5.0)).unwrap();
        assert_eq!(st.max_buffered_unit(), Some(1));
    }

    #[test]
    fn take_unit_is_canonically_ordered() {
        let mut a = ReorderState::new(ReorderConfig::new(2, 1));
        let mut b = ReorderState::new(ReorderConfig::new(2, 1));
        let records = vec![rec(2, 1.0), rec(0, 5.0), rec(1, -2.0), rec(0, 3.0)];
        for r in &records {
            a.buffer(0, r.clone()).unwrap();
        }
        for r in records.iter().rev() {
            b.buffer(0, r.clone()).unwrap();
        }
        let (ra, rb) = (a.take_unit(0), b.take_unit(0));
        assert_eq!(ra, rb, "arrival order must not matter");
        assert!(ra.windows(2).all(|w| w[0].tick <= w[1].tick));
        assert!(a.take_unit(0).is_empty(), "taking twice is empty");
    }

    #[test]
    fn drop_accounting() {
        let mut st = ReorderState::new(ReorderConfig::new(2, 1));
        st.count_drop();
        st.count_drop();
        assert_eq!(st.dropped_total(), 2);
        assert_eq!(st.take_dropped_since_report(), 2);
        assert_eq!(st.take_dropped_since_report(), 0, "report counter resets");
        assert_eq!(st.dropped_total(), 2, "the total does not");
    }
}
