//! Bounded reordering buffer and watermark state for out-of-order
//! streams.
//!
//! The paper's streaming model (Section 4.5) assumes tuples arrive in
//! tick order; real deployments do not deliver that. This module holds
//! the machinery the [`OnlineEngine`](crate::online::OnlineEngine) puts
//! in front of its [`Ingestor`](crate::ingest::Ingestor) when
//! [`EngineConfig::with_reordering`](crate::online::EngineConfig::with_reordering)
//! is set:
//!
//! * a **bounded buffer** holding the records of the open unit and up to
//!   [`ReorderConfig::capacity`] future units — records inside one unit
//!   may arrive in any order, because the buffer re-sorts them into a
//!   canonical order before the unit closes;
//! * a **low watermark** advanced by observed ticks: a unit is
//!   [ready to close](ReorderState::close_ready) once the watermark
//!   guarantees no in-lateness record for it can still arrive. Under
//!   [`WatermarkPolicy::Global`] the watermark is the maximum observed
//!   unit; under [`WatermarkPolicy::PerSource`] it is the **minimum over
//!   live sources'** maxima, so a lagging sensor holds closes back until
//!   it catches up — or idles long enough to be evicted;
//! * deterministic **drop accounting** for records older than the
//!   watermark allows ([`ReorderState::count_drop`]) — they surface in
//!   `RunStats::late_dropped`, never silently.
//!
//! The canonical per-unit order — `(tick, ids, value bits)` — is what
//! makes out-of-order ingestion *bit-identical* to sorted replay:
//! floating-point accumulation is order-sensitive, so the buffer imposes
//! one order regardless of arrival order. Source ids influence only
//! *when* units close, never their contents.

use crate::error::StreamError;
use crate::record::RawRecord;
use crate::Result;
use std::collections::BTreeMap;

/// How the low watermark is derived from observed records.
///
/// Idleness is measured in **stream time**: a source is idle when its
/// own maximum observed unit lags the global frontier by more than
/// `idle_units`. This keeps eviction deterministic (replaying the same
/// records yields the same evictions) — no wall clocks are consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WatermarkPolicy {
    /// One global watermark: the maximum unit observed from any source.
    /// The historical (and default) behavior.
    #[default]
    Global,
    /// One watermark per declared [`RawRecord::source`]; the effective
    /// low watermark is the minimum over live sources, so a slow source
    /// delays closes until it catches up.
    PerSource {
        /// A source whose own maximum lags the global frontier by more
        /// than this many units is **evicted** from the watermark (its
        /// contribution released, [`ReorderState::sources_evicted`]
        /// counted) so one silent sensor cannot freeze closes forever.
        /// It re-registers on its next record.
        idle_units: i64,
    },
}

/// Configuration of the bounded reordering stage.
///
/// Reordering is **enabled** when `capacity > 0`; the default
/// configuration is disabled, which leaves the engine's ingest path
/// byte-identical to the strictly-ordered behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorderConfig {
    /// Maximum number of distinct stream units the buffer may hold (the
    /// open unit plus future units). `0` disables reordering entirely.
    pub capacity: usize,
    /// Allowed lateness in units: a record for a closed unit within
    /// `lateness` units of the open one amends the warehoused tilt
    /// frames; older records are counted and dropped.
    pub lateness: i64,
    /// How the low watermark is derived (global maximum, or min over
    /// live per-source maxima).
    pub policy: WatermarkPolicy,
}

impl ReorderConfig {
    /// Creates a configuration under the global watermark policy
    /// (negative lateness clamps to 0).
    pub fn new(capacity: usize, lateness: i64) -> Self {
        ReorderConfig {
            capacity,
            lateness: lateness.max(0),
            policy: WatermarkPolicy::Global,
        }
    }

    /// Sets the watermark policy (builder style). A `PerSource`
    /// `idle_units` below zero clamps to 0 (every source behind the
    /// frontier is immediately evicted — effectively `Global`).
    pub fn with_policy(mut self, policy: WatermarkPolicy) -> Self {
        self.policy = match policy {
            WatermarkPolicy::PerSource { idle_units } => WatermarkPolicy::PerSource {
                idle_units: idle_units.max(0),
            },
            WatermarkPolicy::Global => WatermarkPolicy::Global,
        };
        self
    }

    /// The disabled configuration: strictly-ordered ingestion.
    pub fn disabled() -> Self {
        ReorderConfig::new(0, 0)
    }

    /// Whether the reordering stage is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Reads the process-wide default from `REGCUBE_REORDER_CAP` and
    /// `REGCUBE_REORDER_LATENESS` (used only when the configuration does
    /// not set reordering explicitly — CI's `REGCUBE_REORDER_CAP=0` pass
    /// pins the watermark-off path without disturbing tests that opt
    /// in). Unset or unparsable variables mean disabled; the policy is
    /// always `Global` from the environment.
    pub fn from_env() -> Self {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<i64>().ok())
        };
        let capacity = parse("REGCUBE_REORDER_CAP").unwrap_or(0).max(0) as usize;
        let lateness = parse("REGCUBE_REORDER_LATENESS").unwrap_or(1);
        ReorderConfig::new(capacity, lateness)
    }
}

impl Default for ReorderConfig {
    fn default() -> Self {
        ReorderConfig::disabled()
    }
}

/// The runtime state of the reordering stage: per-unit record buffers,
/// the observed-tick watermark (global, or per-source), and drop
/// accounting.
#[derive(Debug, Clone)]
pub struct ReorderState {
    config: ReorderConfig,
    /// Buffered records per unit (the open unit and future units).
    pub(crate) units: BTreeMap<i64, Vec<RawRecord>>,
    /// Largest unit any observed tick belonged to (the global frontier).
    pub(crate) max_seen_unit: Option<i64>,
    /// Per-source maxima (live sources only; `PerSource` policy only).
    pub(crate) sources: BTreeMap<u32, i64>,
    /// Beyond-lateness records dropped since construction.
    pub(crate) dropped_total: u64,
    /// Beyond-lateness records dropped since the last unit report.
    pub(crate) dropped_since_report: u64,
    /// Sources evicted for idling more than `idle_units` behind.
    pub(crate) sources_evicted: u64,
    /// Units the effective watermark lagged the global frontier,
    /// accumulated at each frontier advance.
    pub(crate) watermark_held_units: u64,
}

impl ReorderState {
    /// Creates an empty state for `config`.
    pub fn new(config: ReorderConfig) -> Self {
        ReorderState {
            config,
            units: BTreeMap::new(),
            max_seen_unit: None,
            sources: BTreeMap::new(),
            dropped_total: 0,
            dropped_since_report: 0,
            sources_evicted: 0,
            watermark_held_units: 0,
        }
    }

    /// The stage's configuration.
    #[inline]
    pub fn config(&self) -> &ReorderConfig {
        &self.config
    }

    /// Advances the watermark clock with an observed record's unit,
    /// attributed to the default source `0`. Equivalent to
    /// [`observe_from`](Self::observe_from)`(unit, 0)`.
    pub fn observe(&mut self, unit: i64) {
        self.observe_from(unit, 0);
    }

    /// Advances the watermark clock with an observed record's unit and
    /// its declaring source. Under [`WatermarkPolicy::Global`] the
    /// source is ignored (byte-identical to the historical behavior);
    /// under [`WatermarkPolicy::PerSource`] this updates the source's
    /// own maximum, evicts sources idle beyond the policy's allowance,
    /// and accounts the units the effective watermark lags the frontier.
    pub fn observe_from(&mut self, unit: i64, source: u32) {
        let old_frontier = self.max_seen_unit;
        let frontier = old_frontier.map_or(unit, |m| m.max(unit));
        self.max_seen_unit = Some(frontier);
        let WatermarkPolicy::PerSource { idle_units } = self.config.policy else {
            return;
        };
        self.sources
            .entry(source)
            .and_modify(|m| *m = (*m).max(unit))
            .or_insert(unit);
        // Stream-time idleness: evict every live source lagging the
        // frontier beyond the allowance (including a just-reinserted
        // straggler — its stale mark must not re-freeze the watermark).
        let before = self.sources.len();
        self.sources.retain(|_, &mut m| frontier - m <= idle_units);
        self.sources_evicted += (before - self.sources.len()) as u64;
        // Sample the hold only when the frontier actually advances, so
        // the counter reads "units of close-latency attributable to
        // slow sources", not "observations while lagging".
        if old_frontier.map_or(true, |m| unit > m) {
            if let Some(effective) = self.effective_watermark() {
                self.watermark_held_units += (frontier - effective).max(0) as u64;
            }
        }
    }

    /// The largest unit observed so far (from any record, buffered,
    /// amended or dropped) — the global frontier.
    #[inline]
    pub fn max_seen_unit(&self) -> Option<i64> {
        self.max_seen_unit
    }

    /// The effective low watermark: the global frontier under
    /// [`WatermarkPolicy::Global`]; the minimum over live sources'
    /// maxima under [`WatermarkPolicy::PerSource`] (falling back to the
    /// frontier when every source has been evicted).
    pub fn effective_watermark(&self) -> Option<i64> {
        match self.config.policy {
            WatermarkPolicy::Global => self.max_seen_unit,
            WatermarkPolicy::PerSource { .. } => {
                self.sources.values().copied().min().or(self.max_seen_unit)
            }
        }
    }

    /// Live (not evicted) sources currently contributing to the
    /// per-source watermark. Always 0 under the global policy.
    #[inline]
    pub fn live_sources(&self) -> usize {
        self.sources.len()
    }

    /// Sources evicted so far for idling beyond the policy allowance.
    #[inline]
    pub fn sources_evicted(&self) -> u64 {
        self.sources_evicted
    }

    /// Units by which the effective watermark lagged the global frontier,
    /// accumulated at each frontier advance.
    #[inline]
    pub fn watermark_held_units(&self) -> u64 {
        self.watermark_held_units
    }

    /// Whether the watermark guarantees `open_unit` is complete: every
    /// record within the allowed lateness of the effective watermark
    /// has either arrived or would arrive as an amendment.
    pub fn close_ready(&self, open_unit: i64) -> bool {
        self.effective_watermark()
            .is_some_and(|m| m - self.config.lateness > open_unit)
    }

    /// Buffers a record for `unit` (the open unit or a future one).
    ///
    /// # Errors
    /// [`StreamError::ReorderOverflow`] when admitting the record would
    /// exceed the capacity in distinct buffered units.
    pub fn buffer(&mut self, unit: i64, record: RawRecord) -> Result<()> {
        if let Some(bucket) = self.units.get_mut(&unit) {
            bucket.push(record);
            return Ok(());
        }
        if self.units.len() >= self.config.capacity {
            return Err(StreamError::ReorderOverflow {
                capacity: self.config.capacity,
                unit,
            });
        }
        self.units.insert(unit, vec![record]);
        Ok(())
    }

    /// Removes and returns `unit`'s records in the canonical order
    /// `(tick, ids, value bits)` — identical for every arrival order of
    /// the same multiset, which is what makes reordered ingestion
    /// bit-identical to sorted replay. Source ids deliberately do not
    /// participate in the order.
    pub fn take_unit(&mut self, unit: i64) -> Vec<RawRecord> {
        let mut records = self.units.remove(&unit).unwrap_or_default();
        records.sort_by(|a, b| {
            (a.tick, &a.ids, a.value.to_bits()).cmp(&(b.tick, &b.ids, b.value.to_bits()))
        });
        records
    }

    /// The largest unit with buffered records, if any.
    pub fn max_buffered_unit(&self) -> Option<i64> {
        self.units.keys().next_back().copied()
    }

    /// Total records currently buffered.
    pub fn buffered_records(&self) -> usize {
        self.units.values().map(Vec::len).sum()
    }

    /// Distinct units currently buffered.
    pub fn buffered_units(&self) -> usize {
        self.units.len()
    }

    /// Counts one beyond-lateness drop.
    pub fn count_drop(&mut self) {
        self.dropped_total += 1;
        self.dropped_since_report += 1;
    }

    /// Beyond-lateness records dropped since construction.
    #[inline]
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Takes the drop count accumulated since the previous call (the
    /// per-unit-report figure).
    pub fn take_dropped_since_report(&mut self) -> u64 {
        std::mem::take(&mut self.dropped_since_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tick: i64, value: f64) -> RawRecord {
        RawRecord::new(vec![0, 0], tick, value)
    }

    fn per_source(capacity: usize, lateness: i64, idle_units: i64) -> ReorderConfig {
        ReorderConfig::new(capacity, lateness)
            .with_policy(WatermarkPolicy::PerSource { idle_units })
    }

    #[test]
    fn config_enablement_and_env_default() {
        assert!(!ReorderConfig::disabled().enabled());
        assert!(!ReorderConfig::default().enabled());
        assert!(ReorderConfig::new(4, 2).enabled());
        assert_eq!(ReorderConfig::new(4, -3).lateness, 0, "clamped");
        assert_eq!(ReorderConfig::new(4, 2).policy, WatermarkPolicy::Global);
        assert_eq!(
            per_source(4, 2, -1).policy,
            WatermarkPolicy::PerSource { idle_units: 0 },
            "idle allowance clamps at zero"
        );
        // No env vars set in the test environment: disabled.
        if std::env::var("REGCUBE_REORDER_CAP").is_err() {
            assert!(!ReorderConfig::from_env().enabled());
        }
    }

    #[test]
    fn watermark_advances_monotonically() {
        let mut st = ReorderState::new(ReorderConfig::new(4, 2));
        assert_eq!(st.max_seen_unit(), None);
        assert!(!st.close_ready(0));
        st.observe(3);
        st.observe(1); // regressions never pull the watermark back
        assert_eq!(st.max_seen_unit(), Some(3));
        assert_eq!(st.effective_watermark(), Some(3), "global: == frontier");
        // Lateness 2: unit 0 is complete once unit 3 has been seen.
        assert!(st.close_ready(0));
        assert!(!st.close_ready(1));
        assert_eq!(st.live_sources(), 0, "global policy tracks no sources");
        assert_eq!(st.watermark_held_units(), 0);
    }

    #[test]
    fn per_source_watermark_is_min_over_live_sources() {
        let mut st = ReorderState::new(per_source(8, 0, 100));
        st.observe_from(5, 1);
        assert_eq!(st.effective_watermark(), Some(5));
        assert!(st.close_ready(4), "single source: behaves like global");
        // A second, slower source pins the watermark to its own maximum.
        st.observe_from(2, 2);
        assert_eq!(st.max_seen_unit(), Some(5), "frontier unaffected");
        assert_eq!(st.effective_watermark(), Some(2));
        assert!(!st.close_ready(4), "slow source holds the close back");
        assert!(st.close_ready(1));
        // The slow source catches up; the watermark releases.
        st.observe_from(5, 2);
        assert_eq!(st.effective_watermark(), Some(5));
        assert!(st.close_ready(4));
        assert_eq!(st.live_sources(), 2);
        assert_eq!(st.sources_evicted(), 0);
    }

    #[test]
    fn idle_sources_are_evicted_and_reregister() {
        let mut st = ReorderState::new(per_source(8, 0, 2));
        st.observe_from(0, 7); // the sensor that will go silent
        st.observe_from(0, 1);
        assert_eq!(st.live_sources(), 2);
        st.observe_from(1, 1);
        st.observe_from(2, 1);
        assert_eq!(st.live_sources(), 2, "lag 2 is within the allowance");
        assert_eq!(st.effective_watermark(), Some(0));
        st.observe_from(3, 1);
        assert_eq!(st.live_sources(), 1, "lag 3 > 2: source 7 evicted");
        assert_eq!(st.sources_evicted(), 1);
        assert_eq!(st.effective_watermark(), Some(3), "watermark released");
        // Held-unit accounting: the advances to units 1 and 2 found the
        // effective watermark 1 then 2 units behind (source 7 at 0); the
        // advance to 3 evicted source 7 first, so it sampled a lag of 0.
        assert_eq!(st.watermark_held_units(), 1 + 2);
        // The straggler comes back with a *stale* tick: it re-registers
        // but is evicted right away rather than re-freezing the clock.
        st.observe_from(0, 7);
        assert_eq!(st.live_sources(), 1);
        assert_eq!(st.sources_evicted(), 2);
        // ...and coming back with a fresh tick re-registers it for good.
        st.observe_from(3, 7);
        assert_eq!(st.live_sources(), 2);
        assert_eq!(st.effective_watermark(), Some(3));
    }

    #[test]
    fn zero_idle_allowance_tracks_the_frontier_source() {
        let mut st = ReorderState::new(per_source(8, 0, 0));
        st.observe_from(4, 3);
        assert_eq!(st.live_sources(), 1);
        // A different source at the frontier evicts source 3 (allowance
        // 0) and stays live itself — the frontier source always
        // survives, so the watermark degenerates to the global one.
        st.observe_from(6, 9);
        assert_eq!(st.live_sources(), 1);
        assert_eq!(st.sources_evicted(), 1);
        assert_eq!(st.effective_watermark(), Some(6));
        st.observe_from(9, 5);
        assert_eq!(st.live_sources(), 1, "source 9 evicted, source 5 live");
        assert_eq!(st.sources_evicted(), 2);
        assert_eq!(st.max_seen_unit(), Some(9));
        assert_eq!(st.effective_watermark(), Some(9));
        assert!(st.close_ready(8));
    }

    #[test]
    fn buffer_caps_distinct_units_not_records() {
        let mut st = ReorderState::new(ReorderConfig::new(2, 1));
        st.buffer(0, rec(0, 1.0)).unwrap();
        st.buffer(0, rec(1, 2.0)).unwrap();
        st.buffer(1, rec(4, 3.0)).unwrap();
        assert_eq!(st.buffered_units(), 2);
        assert_eq!(st.buffered_records(), 3);
        // A third distinct unit overflows...
        let err = st.buffer(2, rec(8, 4.0)).unwrap_err();
        assert!(matches!(err, StreamError::ReorderOverflow { .. }));
        // ...but existing units keep admitting records.
        st.buffer(1, rec(5, 5.0)).unwrap();
        assert_eq!(st.max_buffered_unit(), Some(1));
    }

    #[test]
    fn take_unit_is_canonically_ordered() {
        let mut a = ReorderState::new(ReorderConfig::new(2, 1));
        let mut b = ReorderState::new(ReorderConfig::new(2, 1));
        let records = vec![rec(2, 1.0), rec(0, 5.0), rec(1, -2.0), rec(0, 3.0)];
        for r in &records {
            a.buffer(0, r.clone()).unwrap();
        }
        for r in records.iter().rev() {
            b.buffer(0, r.clone()).unwrap();
        }
        let (ra, rb) = (a.take_unit(0), b.take_unit(0));
        assert_eq!(ra, rb, "arrival order must not matter");
        assert!(ra.windows(2).all(|w| w[0].tick <= w[1].tick));
        assert!(a.take_unit(0).is_empty(), "taking twice is empty");
    }

    #[test]
    fn drop_accounting() {
        let mut st = ReorderState::new(ReorderConfig::new(2, 1));
        st.count_drop();
        st.count_drop();
        assert_eq!(st.dropped_total(), 2);
        assert_eq!(st.take_dropped_since_report(), 2);
        assert_eq!(st.take_dropped_since_report(), 0, "report counter resets");
        assert_eq!(st.dropped_total(), 2, "the total does not");
    }
}
