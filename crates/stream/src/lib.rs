//! Stream substrate for `regcube` — the "always-grow" on-line side of the
//! paper (Section 4.5).
//!
//! The paper's pipeline: raw records arrive continuously at the primitive
//! layer (individual user, street address, minute); they are accumulated
//! into the corresponding H-tree leaf cells; "since the time granularity
//! of the m-layer is quarter, the aggregated data will trigger the cube
//! computation once every 15 minutes"; tilt-frame slots promote to coarser
//! granularities as they fill.
//!
//! * [`record`] — raw stream records below the m-layer;
//! * [`ingest`] — per-unit accumulation and roll-up of raw records into
//!   m-layer ISB tuples (standard dimensions via hierarchy projection,
//!   time via per-unit OLS fits);
//! * [`online`] — the [`online::OnlineEngine`]: one `close_unit()` per
//!   m-layer time unit feeds the unit's tuples to a pluggable
//!   [`CubingEngine`](regcube_core::engine::CubingEngine) (generic
//!   parameter `E`; Algorithm 1 or 2, on the row or columnar table
//!   backend — [`online::EngineConfig::with_backend`] — and across any
//!   shard count — [`online::EngineConfig::with_shards`] — out of the
//!   box), maintains per-cell
//!   tilt frames, raises o-layer alarms (own-slope or slot-delta
//!   reference, Section 4.3), and fans every unit's merged, sorted
//!   [`UnitDelta`](regcube_core::engine::UnitDelta) out to registered
//!   [`AlarmSink`](regcube_core::alarm::AlarmSink)s
//!   ([`online::EngineConfig::with_sinks`]) so consumers react to
//!   exception transitions without rescanning any layer;
//! * [`reorder`] — the bounded reordering buffer and low-watermark state
//!   behind [`online::EngineConfig::with_reordering`]: out-of-order
//!   records within the allowed lateness ingest bit-identically to
//!   sorted replay, records for already-closed units amend the
//!   warehoused tilt frames exactly (OLS linearity), and
//!   beyond-lateness records are counted in
//!   [`RunStats::late_dropped`](regcube_core::RunStats) — never
//!   silently lost;
//! * [`snapshot`] — immutable unit-boundary [`snapshot::CubeSnapshot`]s
//!   ([`online::OnlineEngine::snapshot`]): cube, tilt ladders and alarm
//!   state captured as one consistent value that answers drill and
//!   dashboard queries **byte-identically** to the live engine without
//!   borrowing it — the publication seam the `regcube_serve`
//!   multi-tenant serving layer swaps behind an `Arc` so readers never
//!   block writers;
//! * [`checkpoint`] — versioned, checksummed checkpoint/recovery for
//!   the engine ([`checkpoint::write_checkpoint`] /
//!   [`checkpoint::restore`]): tilt ladders, alarms, the reorder
//!   buffer and the lateness counters round-trip to a single
//!   self-validating file; torn or corrupt files yield typed
//!   [`StreamError::Checkpoint`] errors, never a half-restored
//!   engine;
//! * [`source`] — replay and mpsc-channel event sources for driving an
//!   engine from another thread.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod error;
pub mod ingest;
pub mod online;
pub mod record;
pub mod reorder;
pub mod snapshot;
pub mod source;

pub use checkpoint::{checkpoint_bytes, restore, restore_bytes, write_checkpoint};
pub use error::StreamError;
pub use ingest::Ingestor;
pub use online::{Alarm, BoxedEngine, EngineConfig, OnlineEngine, TiltHit, UnitReport};
pub use record::RawRecord;
pub use reorder::{ReorderConfig, ReorderState, WatermarkPolicy};
pub use snapshot::CubeSnapshot;
pub use source::{run_engine, ReplaySource, StreamEvent};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StreamError>;
