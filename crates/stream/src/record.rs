//! Raw stream records at the primitive layer.

/// One raw measurement: member coordinates at the *primitive* layer (the
/// lowest granularity collected, e.g. `(individual user, street address)`),
/// the minute-level tick, and the measured value.
#[derive(Debug, Clone, PartialEq)]
pub struct RawRecord {
    /// Member ids at the primitive layer's levels, one per dimension.
    pub ids: Vec<u32>,
    /// Absolute fine-grained tick (e.g. minute index).
    pub tick: i64,
    /// Measured value (e.g. kWh in the minute).
    pub value: f64,
    /// Declaring source (sensor / feed id) for per-source watermarks.
    /// Sources are an *arrival-time* attribute: they decide when units
    /// close under [`WatermarkPolicy::PerSource`](crate::reorder::WatermarkPolicy),
    /// never what the closed unit contains — the canonical per-unit
    /// order stays `(tick, ids, value bits)` so bit-identity with
    /// sorted replay is unaffected. Defaults to `0`.
    pub source: u32,
}

impl RawRecord {
    /// Creates a record from the default source `0`.
    pub fn new(ids: Vec<u32>, tick: i64, value: f64) -> Self {
        RawRecord {
            ids,
            tick,
            value,
            source: 0,
        }
    }

    /// Tags the record with a declaring source id (builder style).
    pub fn with_source(mut self, source: u32) -> Self {
        self.source = source;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = RawRecord::new(vec![3, 1], 42, 0.5);
        assert_eq!(r.ids, vec![3, 1]);
        assert_eq!(r.tick, 42);
        assert_eq!(r.value, 0.5);
        assert_eq!(r.source, 0, "default source");
        let r = r.with_source(7);
        assert_eq!(r.source, 7);
    }
}
