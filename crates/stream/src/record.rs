//! Raw stream records at the primitive layer.

/// One raw measurement: member coordinates at the *primitive* layer (the
/// lowest granularity collected, e.g. `(individual user, street address)`),
/// the minute-level tick, and the measured value.
#[derive(Debug, Clone, PartialEq)]
pub struct RawRecord {
    /// Member ids at the primitive layer's levels, one per dimension.
    pub ids: Vec<u32>,
    /// Absolute fine-grained tick (e.g. minute index).
    pub tick: i64,
    /// Measured value (e.g. kWh in the minute).
    pub value: f64,
}

impl RawRecord {
    /// Creates a record.
    pub fn new(ids: Vec<u32>, tick: i64, value: f64) -> Self {
        RawRecord { ids, tick, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let r = RawRecord::new(vec![3, 1], 42, 0.5);
        assert_eq!(r.ids, vec![3, 1]);
        assert_eq!(r.tick, 42);
        assert_eq!(r.value, 0.5);
    }
}
