//! Event sources: replaying record collections and driving an engine
//! from an mpsc channel (the "infinite flow" side of stream data).

use crate::error::StreamError;
use crate::online::{OnlineEngine, UnitReport};
use crate::record::RawRecord;
use crate::Result;
use regcube_core::engine::CubingEngine;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a shared engine, recovering from a poisoned mutex (a panicking
/// observer must not take the pipeline down with it).
fn lock<E: CubingEngine>(engine: &Arc<Mutex<OnlineEngine<E>>>) -> MutexGuard<'_, OnlineEngine<E>> {
    engine
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One event of the stream protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A raw measurement.
    Record(RawRecord),
    /// An m-layer time-unit boundary: close the unit, recompute, alarm.
    CloseUnit,
    /// End of stream: the runner drains and returns.
    Shutdown,
}

/// Replays a pre-sorted record collection as an event stream, inserting
/// [`StreamEvent::CloseUnit`] at every unit boundary.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    records: Vec<RawRecord>,
    ticks_per_unit: usize,
}

impl ReplaySource {
    /// Creates a source over records sorted by tick.
    ///
    /// # Errors
    /// [`StreamError::BadRecord`] when records are not sorted by tick or
    /// `ticks_per_unit == 0`.
    pub fn new(records: Vec<RawRecord>, ticks_per_unit: usize) -> Result<Self> {
        if ticks_per_unit == 0 {
            return Err(StreamError::BadConfig {
                detail: "ticks_per_unit must be positive".into(),
            });
        }
        if records.windows(2).any(|w| w[1].tick < w[0].tick) {
            return Err(StreamError::BadRecord {
                detail: "replay records must be sorted by tick".into(),
            });
        }
        Ok(ReplaySource {
            records,
            ticks_per_unit,
        })
    }

    /// Expands the records into the full event sequence (records,
    /// boundary closes, final close + shutdown).
    pub fn events(&self) -> Vec<StreamEvent> {
        let mut out = Vec::with_capacity(self.records.len() + 8);
        let mut open_unit = 0i64;
        for r in &self.records {
            let unit = r.tick.div_euclid(self.ticks_per_unit as i64);
            while open_unit < unit {
                out.push(StreamEvent::CloseUnit);
                open_unit += 1;
            }
            out.push(StreamEvent::Record(r.clone()));
        }
        if !self.records.is_empty() {
            out.push(StreamEvent::CloseUnit);
        }
        out.push(StreamEvent::Shutdown);
        out
    }

    /// Sends all events into an unbounded channel, e.g. from a producer
    /// thread.
    ///
    /// # Errors
    /// [`StreamError::BadConfig`] when the receiving side disconnected.
    pub fn send_all(&self, tx: &Sender<StreamEvent>) -> Result<()> {
        for event in self.events() {
            tx.send(event).map_err(|_| StreamError::BadConfig {
                detail: "event channel disconnected".into(),
            })?;
        }
        Ok(())
    }

    /// Sends all events into a bounded channel (blocking on
    /// backpressure), e.g. from a producer thread.
    ///
    /// # Errors
    /// [`StreamError::BadConfig`] when the receiving side disconnected.
    pub fn send_all_sync(&self, tx: &SyncSender<StreamEvent>) -> Result<()> {
        for event in self.events() {
            tx.send(event).map_err(|_| StreamError::BadConfig {
                detail: "event channel disconnected".into(),
            })?;
        }
        Ok(())
    }
}

/// Drives an engine from a channel until [`StreamEvent::Shutdown`],
/// returning the unit reports in order. The engine is shared behind a
/// mutex so observers (dashboards, tests) can query tilt frames and cube
/// state concurrently.
///
/// # Errors
/// Propagates the first engine error; the engine is left in its state at
/// the point of failure.
pub fn run_engine<E: CubingEngine>(
    engine: &Arc<Mutex<OnlineEngine<E>>>,
    rx: &Receiver<StreamEvent>,
) -> Result<Vec<UnitReport>> {
    let mut reports = Vec::new();
    for event in rx.iter() {
        match event {
            StreamEvent::Record(r) => {
                lock(engine).ingest(&r)?;
            }
            StreamEvent::CloseUnit => {
                reports.push(lock(engine).close_unit()?);
            }
            StreamEvent::Shutdown => break,
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_core::result::Algorithm;
    use regcube_core::ExceptionPolicy;
    use regcube_olap::{CubeSchema, CuboidSpec};
    use regcube_tilt::TiltSpec;
    use std::sync::mpsc;

    fn engine() -> OnlineEngine {
        let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
        crate::online::EngineConfig::new(
            schema,
            CuboidSpec::new(vec![0, 0]),
            CuboidSpec::new(vec![2, 2]),
        )
        .with_policy(ExceptionPolicy::slope_threshold(1.0))
        .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
        .with_ticks_per_unit(4)
        .with_algorithm(Algorithm::MoCubing)
        .build()
        .unwrap()
    }

    fn records(units: i64, slope: f64) -> Vec<RawRecord> {
        let mut out = Vec::new();
        for u in 0..units {
            for t in (u * 4)..(u * 4 + 4) {
                out.push(RawRecord::new(vec![0, 0], t, slope * (t % 4) as f64));
                out.push(RawRecord::new(vec![3, 3], t, 0.5));
            }
        }
        out
    }

    #[test]
    fn replay_inserts_unit_boundaries() {
        let src = ReplaySource::new(records(3, 0.1), 4).unwrap();
        let events = src.events();
        let closes = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::CloseUnit))
            .count();
        assert_eq!(closes, 3);
        assert_eq!(events.last(), Some(&StreamEvent::Shutdown));
        // Quiet gaps: a record jumping two units emits two closes.
        let sparse = ReplaySource::new(
            vec![
                RawRecord::new(vec![0, 0], 0, 1.0),
                RawRecord::new(vec![0, 0], 9, 1.0),
            ],
            4,
        )
        .unwrap();
        let closes = sparse
            .events()
            .iter()
            .filter(|e| matches!(e, StreamEvent::CloseUnit))
            .count();
        assert_eq!(closes, 3, "two gap closes + the final close");
    }

    #[test]
    fn unsorted_replay_is_rejected() {
        let bad = vec![
            RawRecord::new(vec![0, 0], 5, 1.0),
            RawRecord::new(vec![0, 0], 2, 1.0),
        ];
        assert!(ReplaySource::new(bad, 4).is_err());
        assert!(ReplaySource::new(vec![], 0).is_err());
    }

    #[test]
    fn channel_pipeline_end_to_end() {
        let engine = Arc::new(Mutex::new(engine()));
        let (tx, rx) = mpsc::channel();
        let src = ReplaySource::new(records(3, 2.0), 4).unwrap();

        let producer = {
            let src = src.clone();
            std::thread::spawn(move || src.send_all(&tx))
        };
        let reports = run_engine(&engine, &rx).unwrap();
        producer.join().unwrap().unwrap();

        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.m_cells, 2);
            assert_eq!(r.alarms.len(), 1, "hot apex each unit");
        }
        // The shared engine remains queryable after the run.
        let e = lock(&engine);
        assert_eq!(e.units_closed(), 3);
        assert!(e.cube().is_ok());
    }

    #[test]
    fn empty_stream_produces_no_reports() {
        let engine = Arc::new(Mutex::new(engine()));
        let (tx, rx) = mpsc::channel();
        ReplaySource::new(vec![], 4).unwrap().send_all(&tx).unwrap();
        let reports = run_engine(&engine, &rx).unwrap();
        assert!(reports.is_empty());
    }
}
