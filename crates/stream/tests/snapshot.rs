//! Regression tests for the query/ingest blocking hazard: a published
//! [`CubeSnapshot`] must answer drills and cube queries with the
//! **same bytes** as the engine-blocking path at the same unit
//! boundary, and must stay frozen while the engine moves on.

use regcube_core::ExceptionPolicy;
use regcube_olap::cell::CellKey;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_stream::{CubeSnapshot, EngineConfig, OnlineEngine, RawRecord};
use regcube_tilt::TiltSpec;

const TPU: usize = 4;

fn engine(shards: usize) -> OnlineEngine {
    let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![1, 1]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(0.8))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TPU)
    .with_shards(shards)
    .build()
    .unwrap()
}

/// A deterministic mixed-traffic unit: drifting cells, one steep cell.
fn feed_unit(e: &mut OnlineEngine, unit: i64) {
    for t in unit * TPU as i64..(unit + 1) * TPU as i64 {
        for a in 0..3u32 {
            for b in 0..3u32 {
                let steep = a == 2 && b == 1;
                let v = if steep {
                    5.0 * (t % TPU as i64) as f64
                } else {
                    1.0 + 0.2 * f64::from(a) + 0.05 * (t % TPU as i64) as f64 * f64::from(b)
                };
                e.ingest(&RawRecord::new(vec![a, b], t, v)).unwrap();
            }
        }
    }
}

fn all_keys() -> Vec<CellKey> {
    let mut keys = Vec::new();
    for a in 0..4u32 {
        for b in 0..4u32 {
            keys.push(CellKey::new(vec![a, b]));
        }
    }
    keys
}

/// Byte-exact equality witness for drill results.
fn drill_bytes(hits: &[regcube_stream::TiltHit]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for h in hits {
        let _ = writeln!(
            out,
            "{} {} u{} [{},{}] b={:016x} s={:016x} score={:016x} exc={}",
            h.level,
            h.level_name,
            h.slot_unit,
            h.measure.start(),
            h.measure.end(),
            h.measure.base().to_bits(),
            h.measure.slope().to_bits(),
            h.score.to_bits(),
            h.exceptional
        );
    }
    out
}

/// At every unit boundary, for every cell and every tilt level, the
/// snapshot's drill answers are byte-identical to the live engine's —
/// the two paths share one implementation, and this pins it.
#[test]
fn snapshot_drills_match_live_engine_bytes() {
    for shards in [1, 3] {
        let mut e = engine(shards);
        for unit in 0..6 {
            feed_unit(&mut e, unit);
            let report = e.close_unit().unwrap();
            let snap = e.snapshot();
            assert_eq!(snap.epoch(), report.snapshot_epoch);
            assert_eq!(snap.unit(), Some(unit));
            for key in all_keys() {
                for level in 0..2 {
                    let live = e.drill_at(level, &key).unwrap();
                    let frozen = snap.drill_at(level, &key).unwrap();
                    assert_eq!(live, frozen, "shards={shards} unit={unit} {key} L{level}");
                    assert_eq!(drill_bytes(&live), drill_bytes(&frozen));
                }
                assert_eq!(
                    drill_bytes(&e.drill_history(&key).unwrap()),
                    drill_bytes(&snap.drill_history(&key).unwrap()),
                    "shards={shards} unit={unit} {key} history"
                );
            }
            // Cube parity: same m-/o-tables, bit for bit.
            let (live, frozen) = (e.cube().unwrap(), snap.cube().unwrap());
            assert_eq!(live.m_table().len(), frozen.m_table().len());
            for (key, isb) in live.m_table() {
                let got = frozen.m_table().get(key).unwrap();
                assert_eq!(isb.base().to_bits(), got.base().to_bits());
                assert_eq!(isb.slope().to_bits(), got.slope().to_bits());
            }
            // Alarm parity with the close that published this epoch.
            assert_eq!(snap.alarms(), report.alarms.as_slice());
        }
    }
}

/// A held snapshot is frozen: the engine ingesting and closing more
/// units never changes what an old snapshot answers.
#[test]
fn snapshot_is_immutable_under_further_ingest() {
    let mut e = engine(2);
    for unit in 0..3 {
        feed_unit(&mut e, unit);
        e.close_unit().unwrap();
    }
    let snap = e.snapshot();
    let before = snap.canonical_text();
    let key = CellKey::new(vec![2, 1]);
    let drills_before = drill_bytes(&snap.drill_history(&key).unwrap());

    for unit in 3..7 {
        feed_unit(&mut e, unit);
        e.close_unit().unwrap();
    }
    assert_eq!(
        snap.canonical_text(),
        before,
        "snapshot changed under ingest"
    );
    assert_eq!(
        drill_bytes(&snap.drill_history(&key).unwrap()),
        drills_before
    );
    assert_eq!(snap.epoch(), 3);
    assert_eq!(e.snapshot().epoch(), 7);
    assert_ne!(e.snapshot().canonical_text(), before);
}

/// Before the first close the snapshot mirrors the engine's
/// not-materialized error; empty units close and publish like the
/// live engine (epoch advances, no cube).
#[test]
fn snapshot_error_parity_and_empty_units() {
    let mut e = engine(1);
    let snap = e.snapshot();
    assert_eq!(snap.epoch(), 0);
    assert_eq!(snap.unit(), None);
    assert!(snap.cube().is_err());
    assert!(e.cube().is_err());
    assert!(snap.try_cube().is_none());

    e.close_unit().unwrap(); // empty unit
    let snap = e.snapshot();
    assert_eq!(snap.epoch(), 1);
    assert_eq!(snap.unit(), Some(0));
    assert!(snap.cube().is_err(), "empty close materializes nothing");

    feed_unit(&mut e, 1);
    e.close_unit().unwrap();
    let snap = e.snapshot();
    assert_eq!(snap.epoch(), 2);
    assert!(snap.cube().is_ok());
}

/// `canonical_text` is a faithful equality witness: equal state renders
/// equal, different state renders different.
#[test]
fn canonical_text_discriminates() {
    let mk = |units: i64| -> CubeSnapshot {
        let mut e = engine(1);
        for unit in 0..units {
            feed_unit(&mut e, unit);
            e.close_unit().unwrap();
        }
        e.snapshot()
    };
    assert_eq!(mk(3).canonical_text(), mk(3).canonical_text());
    assert_ne!(mk(3).canonical_text(), mk(4).canonical_text());
}

/// Snapshot epochs correlate with `UnitReport::snapshot_epoch` — the
/// serving layer's join key between closes and publications.
#[test]
fn report_epoch_matches_snapshot_epoch() {
    let mut e = engine(1);
    for unit in 0..4 {
        feed_unit(&mut e, unit);
        let report = e.close_unit().unwrap();
        assert_eq!(report.snapshot_epoch, (unit + 1) as u64);
        assert_eq!(e.snapshot().epoch(), report.snapshot_epoch);
    }
}
