//! Checkpoint/recovery integration tests: save → restore → continue
//! must be bit-identical to an uninterrupted run on every backend and
//! shard count, and every way a checkpoint file can go bad must
//! surface as a typed [`StreamError::Checkpoint`] — never a panic,
//! never a silently half-restored engine.

use proptest::prelude::*;
use regcube_core::engine::Backend;
use regcube_core::ExceptionPolicy;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_stream::{
    restore_bytes, EngineConfig, OnlineEngine, RawRecord, StreamError, UnitReport, WatermarkPolicy,
};
use regcube_tilt::TiltSpec;

const TPU: usize = 4;

/// The shared analysis: synthetic 2x2x2 schema, o-layer = apex,
/// m-layer = primitive = leaves, two-level tilt ladder, watermark
/// reordering with per-source eviction.
fn config() -> EngineConfig {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(1.0))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TPU)
    .with_reordering(12, 2)
    .with_watermark_policy(WatermarkPolicy::PerSource { idle_units: 3 })
}

fn drive(e: &mut OnlineEngine, records: &[RawRecord]) -> Vec<UnitReport> {
    let mut reports = Vec::new();
    for r in records {
        e.ingest(r).unwrap();
        reports.extend(e.drain_ready().unwrap());
    }
    reports
}

fn make_records(raw: &[(Vec<u32>, i64, f64)]) -> Vec<RawRecord> {
    let mut records: Vec<RawRecord> = raw
        .iter()
        .map(|(ids, tick, value)| {
            // Source id derived from the cell so per-source watermark
            // state is non-trivial but deterministic.
            let source = ids.iter().sum::<u32>() % 3;
            RawRecord::new(ids.clone(), *tick, *value).with_source(source)
        })
        .collect();
    records.sort_by(|a, b| {
        (a.tick, &a.ids, a.value.to_bits()).cmp(&(b.tick, &b.ids, b.value.to_bits()))
    });
    records
}

/// `Result<OnlineEngine, _>` has no `Debug` (the boxed engine is a
/// trait object), so `unwrap_err` doesn't apply; unwrap by hand.
fn expect_checkpoint_err(res: regcube_stream::Result<OnlineEngine>) -> StreamError {
    match res {
        Err(e @ StreamError::Checkpoint { .. }) => e,
        Err(e) => panic!("expected a checkpoint error, got: {e}"),
        Ok(_) => panic!("expected a checkpoint error, got an engine"),
    }
}

fn assert_reports_eq(xs: &[UnitReport], ys: &[UnitReport], what: &str) {
    assert_eq!(xs.len(), ys.len(), "{what}: report count");
    for (x, y) in xs.iter().zip(ys) {
        assert_eq!(x.unit, y.unit, "{what}");
        assert_eq!(x.m_cells, y.m_cells, "{what}: unit {}", x.unit);
        assert_eq!(x.alarms, y.alarms, "{what}: unit {}", x.unit);
        assert_eq!(
            x.late_amendments, y.late_amendments,
            "{what}: unit {}",
            x.unit
        );
        assert_eq!(
            x.alarm_revisions, y.alarm_revisions,
            "{what}: unit {}",
            x.unit
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Save at an arbitrary cut point, restore on every backend/shard
    /// combination, continue with the rest of the stream: the surviving
    /// engines finish byte-identical to the uninterrupted one —
    /// snapshots (`canonical_text`), unit reports, alarms, amendments,
    /// revisions and lateness counters all agree.
    #[test]
    fn save_restore_continue_is_bit_identical(
        raw in prop::collection::vec(
            (prop::collection::vec(0u32..4, 2), 0i64..32, -10.0..10.0f64),
            8..96,
        ),
        cut_frac in 0.2f64..0.8,
    ) {
        let records = make_records(&raw);
        let cut = ((records.len() as f64) * cut_frac) as usize;
        let (first, second) = records.split_at(cut);

        for (backend, shards) in [
            (Backend::Row, 1usize),
            (Backend::Row, 3),
            (Backend::Arena, 1),
            (Backend::Arena, 3),
        ] {
            let cfg = || config().with_backend(backend).with_shards(shards);

            // The uninterrupted reference.
            let mut reference = cfg().build().unwrap();
            let mut ref_reports = drive(&mut reference, &records.to_vec());
            ref_reports.extend(reference.flush().unwrap());

            // The interrupted run: first half, checkpoint, restore,
            // second half.
            let mut victim = cfg().build().unwrap();
            let mut reports = drive(&mut victim, first);
            let bytes = victim.checkpoint_bytes().unwrap();
            let mut revived = restore_bytes(cfg(), &bytes).unwrap();
            reports.extend(drive(&mut revived, second));
            reports.extend(revived.flush().unwrap());

            assert_reports_eq(&ref_reports, &reports,
                &format!("{backend:?}/{shards} shards"));
            prop_assert_eq!(
                reference.snapshot().canonical_text(),
                revived.snapshot().canonical_text(),
                "snapshot divergence on {:?}/{} shards", backend, shards
            );
            let (ref_stats, stats) = (reference.stats(), revived.stats());
            prop_assert_eq!(stats.late_dropped, ref_stats.late_dropped);
            prop_assert_eq!(stats.late_amendments, ref_stats.late_amendments);
            prop_assert_eq!(stats.sources_evicted, ref_stats.sources_evicted);
            prop_assert_eq!(
                stats.watermark_held_units,
                ref_stats.watermark_held_units
            );
        }
    }

    /// Any truncation of a valid checkpoint and any single corrupted
    /// byte yields a typed `StreamError::Checkpoint` — never a panic,
    /// never an engine.
    #[test]
    fn torn_and_corrupt_checkpoints_fail_typed(
        raw in prop::collection::vec(
            (prop::collection::vec(0u32..4, 2), 0i64..16, -10.0..10.0f64),
            8..40,
        ),
        cut in 0usize..4096,
        flip in 0usize..4096,
    ) {
        let records = make_records(&raw);
        let mut e = config().build().unwrap();
        drive(&mut e, &records);
        let bytes = e.checkpoint_bytes().unwrap();

        let torn = &bytes[..cut % bytes.len()];
        match restore_bytes(config(), torn) {
            Err(StreamError::Checkpoint { .. }) => {}
            Err(e) => prop_assert!(false, "torn file: wrong error type {}", e),
            Ok(_) => prop_assert!(false, "torn file restored an engine"),
        }

        let mut corrupt = bytes.clone();
        corrupt[flip % bytes.len()] ^= 0x20;
        // Either the envelope/checksum rejects it, or (for the rare
        // checksum-of-corrupt-payload collision — impossible with one
        // flipped bit under FNV) the decode does. Never a panic.
        if let Err(err) = restore_bytes(config(), &corrupt) {
            prop_assert!(matches!(err, StreamError::Checkpoint { .. }),
                "wrong error type: {err}");
        }
    }
}

#[test]
fn restore_rejects_mismatched_configuration() {
    let records = make_records(&[
        (vec![0, 0], 0, 1.0),
        (vec![1, 1], 3, 2.0),
        (vec![0, 1], 9, -1.0),
    ]);
    let mut e = config().build().unwrap();
    drive(&mut e, &records);
    let bytes = e.checkpoint_bytes().unwrap();

    // A different analysis (other tilt spec) must be rejected.
    let other_tilt = config().with_tilt(TiltSpec::new(vec![("unit", 8)]).unwrap());
    let err = expect_checkpoint_err(restore_bytes(other_tilt, &bytes));
    assert!(err.to_string().contains("mismatch"), "{err}");

    // Reordering-disabled config against a watermark checkpoint: also
    // typed, also refused.
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let strict = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(1.0))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TPU);
    let err = expect_checkpoint_err(restore_bytes(strict, &bytes));
    assert!(err.to_string().contains("reordering"), "{err}");
}

#[test]
fn checkpoint_file_round_trips_and_missing_file_is_typed() {
    let records = make_records(&[
        (vec![0, 0], 0, 1.0),
        (vec![0, 0], 1, 2.0),
        (vec![1, 1], 4, 3.0),
        (vec![0, 0], 5, 1.5),
        (vec![1, 0], 9, -2.0),
        (vec![0, 0], 13, 4.0),
    ]);
    let mut e = config().build().unwrap();
    drive(&mut e, &records);

    let dir = std::env::temp_dir().join(format!("regcube-ckpt-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("engine.rgck");

    e.write_checkpoint(&path).unwrap();
    let revived = config().restore(&path).unwrap();
    assert_eq!(
        e.snapshot().canonical_text(),
        revived.snapshot().canonical_text()
    );
    assert_eq!(e.open_unit(), revived.open_unit());
    assert_eq!(e.buffered_records(), revived.buffered_records());

    let missing = dir.join("nope.rgck");
    expect_checkpoint_err(config().restore(&missing));

    std::fs::remove_dir_all(&dir).ok();
}

/// A strict-order engine mid-unit refuses to checkpoint (typed), and
/// accepts at the boundary.
#[test]
fn strict_order_checkpoint_requires_a_unit_boundary() {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    let cfg = EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(1.0))
    .with_tilt(TiltSpec::new(vec![("unit", 4)]).unwrap())
    .with_ticks_per_unit(TPU);
    let mut e = cfg.clone().build().unwrap();
    for t in 0..TPU as i64 {
        e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
    }
    // Mid-unit: the open accumulation is non-empty.
    let err = e.checkpoint_bytes().unwrap_err();
    assert!(
        matches!(&err, StreamError::Checkpoint { detail } if detail.contains("boundary")),
        "{err}"
    );
    e.close_unit().unwrap();
    let bytes = e.checkpoint_bytes().unwrap();
    let mut revived = restore_bytes(cfg, &bytes).unwrap();
    assert_eq!(
        e.snapshot().canonical_text(),
        revived.snapshot().canonical_text()
    );

    // The restored engine keeps working: next unit closes cleanly.
    for t in TPU as i64..2 * TPU as i64 {
        revived.ingest(&RawRecord::new(vec![0, 0], t, 2.0)).unwrap();
    }
    let report = revived.close_unit().unwrap();
    assert_eq!(report.unit, 1);
}

/// The checkpoint captures in-flight lateness state: records buffered
/// in the reorder window and a pending amendment survive the restart
/// and surface in the post-restore closes exactly as they would have.
#[test]
fn reorder_buffer_and_amendments_survive_restart() {
    let mut e = config().build().unwrap();
    // Two closed units of history from source 0.
    for t in 0..(2 * TPU) as i64 {
        e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
        e.drain_ready().unwrap();
    }
    // Advance the watermark so both units close. The advance must come
    // from source 0 — it holds the minimum mark, so a different source
    // advancing would (correctly) keep the low watermark pinned.
    e.ingest(&RawRecord::new(vec![0, 0], (4 * TPU) as i64, 1.0))
        .unwrap();
    let closed: Vec<i64> = e.drain_ready().unwrap().iter().map(|r| r.unit).collect();
    assert_eq!(closed, vec![0, 1]);
    // A straggler amending closed unit 1, plus a buffered future record:
    // both live only in engine state now.
    e.ingest(&RawRecord::new(vec![0, 0], TPU as i64 + 1, 0.5))
        .unwrap();
    assert!(e.buffered_records() > 0);

    let bytes = e.checkpoint_bytes().unwrap();
    let mut a = e; // uninterrupted
    let mut b = restore_bytes(config(), &bytes).unwrap();
    assert_eq!(a.buffered_records(), b.buffered_records());

    let tail: Vec<RawRecord> = (0..TPU as i64)
        .map(|t| RawRecord::new(vec![1, 1], (5 * TPU) as i64 + t, 3.0).with_source(1))
        .collect();
    let mut ra = drive(&mut a, &tail);
    ra.extend(a.flush().unwrap());
    let mut rb = drive(&mut b, &tail);
    rb.extend(b.flush().unwrap());

    assert_reports_eq(&ra, &rb, "post-restore lateness replay");
    assert!(
        ra.iter().any(|r| !r.late_amendments.is_empty()),
        "the straggler must surface as an amendment"
    );
    assert_eq!(a.late_amended(), b.late_amended());
    assert_eq!(a.snapshot().canonical_text(), b.snapshot().canonical_text());
}

/// Restored frames answer time-travel drills identically, including
/// the ISB measures warehoused before the restart.
#[test]
fn restored_frames_answer_drills_identically() {
    let mut e = config().build().unwrap();
    let mut tick = 0i64;
    for unit in 0..6i64 {
        for _ in 0..TPU {
            let v = (unit as f64) * 1.5 - (tick % 3) as f64;
            e.ingest(&RawRecord::new(vec![0, 0], tick, v)).unwrap();
            e.ingest(&RawRecord::new(vec![1, 1], tick, -v).with_source(1))
                .unwrap();
            tick += 1;
        }
        e.drain_ready().unwrap();
    }
    let bytes = e.checkpoint_bytes().unwrap();
    let revived = restore_bytes(config(), &bytes).unwrap();

    for key in [vec![0u32, 0], vec![1, 1]] {
        let key = regcube_olap::cell::CellKey::new(key);
        let (fa, fb) = (e.tilt_frame(&key), revived.tilt_frame(&key));
        match (fa, fb) {
            (Some(fa), Some(fb)) => {
                assert_eq!(fa.timeline(), fb.timeline(), "cell {key}");
                assert!(!fa.timeline().is_empty());
            }
            (None, None) => {}
            _ => panic!("frame presence mismatch for {key}"),
        }
    }
}
