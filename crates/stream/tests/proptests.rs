//! Property tests for ingestion: hierarchy projection and per-unit OLS
//! must conserve the stream's mass and match direct fits; watermark
//! reordering must be bit-identical to sorted replay and account for
//! every beyond-lateness drop.

use proptest::prelude::*;
use regcube_core::ExceptionPolicy;
use regcube_olap::cell::CellKey;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::{Isb, TimeSeries};
use regcube_stream::{EngineConfig, Ingestor, OnlineEngine, RawRecord, UnitReport};
use regcube_tilt::TiltSpec;

const TPU: usize = 4;

/// A reorder-enabled engine over the synthetic 2x2x2 schema (o-layer =
/// apex, m-layer = primitive = leaves, 4 ticks per unit).
fn reorder_engine(capacity: usize, lateness: i64) -> OnlineEngine {
    let schema = CubeSchema::synthetic(2, 2, 2).unwrap();
    EngineConfig::new(
        schema,
        CuboidSpec::new(vec![0, 0]),
        CuboidSpec::new(vec![2, 2]),
    )
    .with_policy(ExceptionPolicy::slope_threshold(1.0))
    .with_tilt(TiltSpec::new(vec![("unit", 4), ("coarse", 3)]).unwrap())
    .with_ticks_per_unit(TPU)
    .with_reordering(capacity, lateness)
    .build()
    .unwrap()
}

/// Drives an engine record-by-record with watermark closes and a final
/// flush; returns every report in order.
fn drive(e: &mut OnlineEngine, records: &[RawRecord]) -> Vec<UnitReport> {
    let mut reports = Vec::new();
    for r in records {
        e.ingest(r).unwrap();
        reports.extend(e.drain_ready().unwrap());
    }
    reports.extend(e.flush().unwrap());
    reports
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sum of ingested record values equals the sum of the fitted
    /// ISBs' series sums (per unit, across all cells) — nothing is lost
    /// or double-counted by projection/accumulation.
    #[test]
    fn ingestion_conserves_mass(
        records in prop::collection::vec(
            (prop::collection::vec(0u32..9, 2), 0i64..8, -10.0..10.0f64),
            1..120,
        ),
    ) {
        let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
        let mut ing = Ingestor::new(
            schema,
            CuboidSpec::new(vec![2, 2]),
            CuboidSpec::new(vec![1, 1]),
            8,
        ).unwrap();
        let mut total = 0.0;
        for (ids, tick, value) in &records {
            ing.ingest(&RawRecord::new(ids.clone(), *tick, *value)).unwrap();
            total += value;
        }
        let (_, cells) = ing.close_unit().unwrap();
        let fitted_total: f64 = cells.iter().map(|(_, isb)| isb.sum_z()).sum();
        prop_assert!((fitted_total - total).abs() < 1e-6 * (1.0 + total.abs()),
            "fitted {} vs ingested {}", fitted_total, total);
    }

    /// Ingesting a dense per-tick series for one cell yields exactly the
    /// direct OLS fit of that series.
    #[test]
    fn dense_cell_matches_direct_fit(
        values in prop::collection::vec(-100.0..100.0f64, 8),
    ) {
        let schema = CubeSchema::synthetic(1, 1, 4).unwrap();
        let mut ing = Ingestor::new(
            schema,
            CuboidSpec::new(vec![1]),
            CuboidSpec::new(vec![1]),
            8,
        ).unwrap();
        for (t, v) in values.iter().enumerate() {
            ing.ingest(&RawRecord::new(vec![2], t as i64, *v)).unwrap();
        }
        let (_, cells) = ing.close_unit().unwrap();
        prop_assert_eq!(cells.len(), 1);
        let direct = Isb::fit(&TimeSeries::new(0, values.clone()).unwrap()).unwrap();
        prop_assert!(cells[0].1.approx_eq(&direct, 1e-9));
    }

    /// Any arrival order whose displacement stays within the allowed
    /// lateness is **bit-identical** to sorted replay: same reports,
    /// same alarms, same warehoused tilt frames, same o-layer — with no
    /// amendments and no drops. Duplicate `(cell, tick)` records (the
    /// generator produces them freely) accumulate identically on both
    /// sides.
    #[test]
    fn bounded_reordering_is_bit_identical_to_sorted_replay(
        records in prop::collection::vec(
            (prop::collection::vec(0u32..4, 2), 0i64..24, -10.0..10.0f64),
            1..160,
        ),
        jitters in prop::collection::vec(0i64..(2 * TPU as i64), 160),
    ) {
        let lateness = 2i64;
        // The sorted stream: canonical (tick, ids, value-bits) order.
        let mut sorted: Vec<RawRecord> = records
            .iter()
            .map(|(ids, tick, value)| RawRecord::new(ids.clone(), *tick, *value))
            .collect();
        sorted.sort_by(|a, b| {
            (a.tick, &a.ids, a.value.to_bits()).cmp(&(b.tick, &b.ids, b.value.to_bits()))
        });
        // The shuffled stream: stable-sort by jittered tick, so every
        // record's displacement is under `lateness` units.
        let mut shuffled: Vec<(i64, RawRecord)> = sorted
            .iter()
            .zip(&jitters)
            .map(|(r, j)| (r.tick + j, r.clone()))
            .collect();
        shuffled.sort_by_key(|(k, _)| *k);
        let shuffled: Vec<RawRecord> = shuffled.into_iter().map(|(_, r)| r).collect();

        let mut a = reorder_engine(12, lateness);
        let mut b = reorder_engine(12, lateness);
        let ra = drive(&mut a, &sorted);
        let rb = drive(&mut b, &shuffled);

        prop_assert_eq!(a.late_dropped(), 0);
        prop_assert_eq!(b.late_dropped(), 0, "in-lateness records never drop");
        prop_assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            prop_assert_eq!(x.unit, y.unit);
            prop_assert_eq!(x.m_cells, y.m_cells, "unit {}", x.unit);
            prop_assert_eq!(&x.alarms, &y.alarms, "unit {}", x.unit);
            prop_assert!(y.late_amendments.is_empty(), "buffered, not amended");
            match (&x.cube_delta, &y.cube_delta) {
                (Some(dx), Some(dy)) => {
                    prop_assert_eq!(&dx.appeared, &dy.appeared);
                    prop_assert_eq!(&dx.cleared, &dy.cleared);
                }
                (None, None) => {}
                _ => prop_assert!(false, "unit {} emptiness mismatch", x.unit),
            }
        }
        // Every warehoused m-frame is bitwise equal.
        for (ids, _, _) in &records {
            let key = CellKey::new(ids.clone());
            match (a.tilt_frame(&key), b.tilt_frame(&key)) {
                (Some(fa), Some(fb)) => prop_assert_eq!(fa.timeline(), fb.timeline()),
                (None, None) => {}
                _ => prop_assert!(false, "frame presence mismatch for {}", key),
            }
        }
        // And the cube's o-layer (both streams are non-empty).
        let (ca, cb) = (a.cube().unwrap(), b.cube().unwrap());
        prop_assert_eq!(ca.o_table().len(), cb.o_table().len());
        for (key, m) in ca.o_table() {
            prop_assert_eq!(cb.o_table().get(key), Some(m), "o-cell {}", key);
        }
    }

    /// Failure injection: records beyond the allowed lateness are
    /// counted in `late_dropped` — exactly, never silently, never as a
    /// panic — while in-lateness stragglers (including duplicates of
    /// ticks already fitted) become amendments reported through the
    /// unit reports.
    #[test]
    fn beyond_lateness_drops_and_duplicates_are_fully_accounted(
        units in 3i64..6,
        stale in prop::collection::vec((prop::collection::vec(0u32..4, 2), -8i64..8, -5.0..5.0f64), 1..12),
        dups in prop::collection::vec((0i64..4, -5.0..5.0f64), 1..6),
    ) {
        let lateness = 1i64;
        let mut e = reorder_engine(4, lateness);
        // Advance the stream `units` units with explicit closes.
        for u in 0..units {
            for t in u * TPU as i64..(u + 1) * TPU as i64 {
                e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
            }
            e.close_unit().unwrap();
        }
        let open = e.open_unit();
        prop_assert_eq!(open, units);

        // Stale records: every tick below the amendable window (unit <
        // open - lateness), including pre-epoch ticks, must be counted.
        let horizon = (open - lateness) * TPU as i64;
        let mut expected_drops = 0u64;
        for (ids, tick, value) in &stale {
            let t = tick - 8; // range [-16, 0): always below unit 0 ... or early units
            if t < horizon {
                e.ingest(&RawRecord::new(ids.clone(), t, *value)).unwrap();
                expected_drops += 1;
            }
        }
        prop_assert_eq!(e.late_dropped(), expected_drops);

        // Duplicate ticks inside the amendable window become exact
        // amendments of the already-fitted slot.
        let amend_unit = open - lateness;
        for (off, value) in &dups {
            let t = amend_unit * TPU as i64 + off;
            e.ingest(&RawRecord::new(vec![0, 0], t, *value)).unwrap();
        }
        for t in open * TPU as i64..(open + 1) * TPU as i64 {
            e.ingest(&RawRecord::new(vec![0, 0], t, 1.0)).unwrap();
        }
        let report = e.close_unit().unwrap();
        prop_assert_eq!(report.late_dropped, expected_drops);
        prop_assert_eq!(report.late_amendments.len(), dups.len());
        for (am, (off, value)) in report.late_amendments.iter().zip(&dups) {
            prop_assert_eq!(am.unit, amend_unit as u64);
            prop_assert_eq!(am.tick, amend_unit * TPU as i64 + off);
            prop_assert_eq!(am.delta, *value);
        }
        prop_assert_eq!(e.stats().late_dropped, expected_drops);
        prop_assert_eq!(e.late_dropped(), expected_drops, "amendments are not drops");
    }

    /// Unit windows tile the timeline: closing `u` units leaves the open
    /// window starting exactly at `u * ticks`.
    #[test]
    fn windows_tile(units in 1usize..6, ticks in 1usize..6) {
        let schema = CubeSchema::synthetic(1, 1, 2).unwrap();
        let mut ing = Ingestor::new(
            schema,
            CuboidSpec::new(vec![1]),
            CuboidSpec::new(vec![1]),
            ticks,
        ).unwrap();
        for u in 0..units {
            let (first, last) = ing.open_window();
            prop_assert_eq!(first, (u * ticks) as i64);
            prop_assert_eq!(last, ((u + 1) * ticks) as i64 - 1);
            ing.ingest(&RawRecord::new(vec![0], first, 1.0)).unwrap();
            let (closed, cells) = ing.close_unit().unwrap();
            prop_assert_eq!(closed, u as i64);
            prop_assert_eq!(cells.len(), 1);
            prop_assert_eq!(cells[0].1.interval(), (first, last));
        }
    }
}
