//! Property tests for ingestion: hierarchy projection and per-unit OLS
//! must conserve the stream's mass and match direct fits.

use proptest::prelude::*;
use regcube_olap::{CubeSchema, CuboidSpec};
use regcube_regress::{Isb, TimeSeries};
use regcube_stream::{Ingestor, RawRecord};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sum of ingested record values equals the sum of the fitted
    /// ISBs' series sums (per unit, across all cells) — nothing is lost
    /// or double-counted by projection/accumulation.
    #[test]
    fn ingestion_conserves_mass(
        records in prop::collection::vec(
            (prop::collection::vec(0u32..9, 2), 0i64..8, -10.0..10.0f64),
            1..120,
        ),
    ) {
        let schema = CubeSchema::synthetic(2, 2, 3).unwrap();
        let mut ing = Ingestor::new(
            schema,
            CuboidSpec::new(vec![2, 2]),
            CuboidSpec::new(vec![1, 1]),
            8,
        ).unwrap();
        let mut total = 0.0;
        for (ids, tick, value) in &records {
            ing.ingest(&RawRecord::new(ids.clone(), *tick, *value)).unwrap();
            total += value;
        }
        let (_, cells) = ing.close_unit().unwrap();
        let fitted_total: f64 = cells.iter().map(|(_, isb)| isb.sum_z()).sum();
        prop_assert!((fitted_total - total).abs() < 1e-6 * (1.0 + total.abs()),
            "fitted {} vs ingested {}", fitted_total, total);
    }

    /// Ingesting a dense per-tick series for one cell yields exactly the
    /// direct OLS fit of that series.
    #[test]
    fn dense_cell_matches_direct_fit(
        values in prop::collection::vec(-100.0..100.0f64, 8),
    ) {
        let schema = CubeSchema::synthetic(1, 1, 4).unwrap();
        let mut ing = Ingestor::new(
            schema,
            CuboidSpec::new(vec![1]),
            CuboidSpec::new(vec![1]),
            8,
        ).unwrap();
        for (t, v) in values.iter().enumerate() {
            ing.ingest(&RawRecord::new(vec![2], t as i64, *v)).unwrap();
        }
        let (_, cells) = ing.close_unit().unwrap();
        prop_assert_eq!(cells.len(), 1);
        let direct = Isb::fit(&TimeSeries::new(0, values.clone()).unwrap()).unwrap();
        prop_assert!(cells[0].1.approx_eq(&direct, 1e-9));
    }

    /// Unit windows tile the timeline: closing `u` units leaves the open
    /// window starting exactly at `u * ticks`.
    #[test]
    fn windows_tile(units in 1usize..6, ticks in 1usize..6) {
        let schema = CubeSchema::synthetic(1, 1, 2).unwrap();
        let mut ing = Ingestor::new(
            schema,
            CuboidSpec::new(vec![1]),
            CuboidSpec::new(vec![1]),
            ticks,
        ).unwrap();
        for u in 0..units {
            let (first, last) = ing.open_window();
            prop_assert_eq!(first, (u * ticks) as i64);
            prop_assert_eq!(last, ((u + 1) * ticks) as i64 - 1);
            ing.ingest(&RawRecord::new(vec![0], first, 1.0)).unwrap();
            let (closed, cells) = ing.close_unit().unwrap();
            prop_assert_eq!(closed, u as i64);
            prop_assert_eq!(cells.len(), 1);
            prop_assert_eq!(cells[0].1.interval(), (first, last));
        }
    }
}
