//! Tilt time frame substrate (paper Section 4.1).
//!
//! In stream analysis "people are often interested in recent changes at a
//! fine scale, but long term changes at a coarse scale". A **tilt time
//! frame** registers time at multiple granularities: the most recent time
//! at the finest granularity, progressively older time at coarser ones.
//! The paper's Figure 4 frame keeps 4 quarters (of an hour), 24 hours,
//! 31 days and 12 months — `4 + 24 + 31 + 12 = 71` slots instead of the
//! `366 · 24 · 4 = 35,136` quarter slots of a flat year, "a saving of
//! about 495 times" (Example 3).
//!
//! * [`scale::TiltSpec`] describes the granularity ladder;
//! * [`frame::TiltFrame`] holds the slots and performs **promotion**: when
//!   a coarser-unit boundary fills (e.g. 4 quarters complete an hour), the
//!   fine slots are merged — for regression measures via Theorem 3.3,
//!   losslessly — and pushed one level up (Section 4.5);
//! * [`mergeable::TimeMergeable`] is the measure contract (implemented for
//!   [`regcube_regress::Isb`]), keeping the frame generic.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod frame;
pub mod mergeable;
pub mod scale;

pub use error::TiltError;
pub use frame::{AmendOutcome, TiltFrame, TiltSlot, TiltStats};
pub use mergeable::TimeMergeable;
pub use scale::{LevelSpec, TiltSpec};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TiltError>;
