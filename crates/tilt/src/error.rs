//! Error type for the tilt-frame substrate.

use regcube_regress::RegressError;
use std::fmt;

/// Errors produced by tilt-frame construction and ingestion.
#[derive(Debug, Clone, PartialEq)]
pub enum TiltError {
    /// A tilt specification was structurally invalid.
    BadSpec {
        /// Description of the violation.
        detail: String,
    },
    /// A pushed measure does not continue the frame's timeline.
    OutOfOrder {
        /// Description of the discontinuity.
        detail: String,
    },
    /// A query addressed a granularity level the spec does not have.
    UnknownLevel {
        /// Offending level index.
        level: usize,
        /// Number of levels in the spec.
        count: usize,
    },
    /// Merging measures failed (e.g. non-contiguous ISB intervals).
    Merge(RegressError),
}

impl fmt::Display for TiltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TiltError::BadSpec { detail } => write!(f, "bad tilt spec: {detail}"),
            TiltError::OutOfOrder { detail } => write!(f, "out-of-order push: {detail}"),
            TiltError::UnknownLevel { level, count } => {
                write!(f, "tilt level {level} out of range (spec has {count})")
            }
            TiltError::Merge(e) => write!(f, "measure merge failed: {e}"),
        }
    }
}

impl std::error::Error for TiltError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TiltError::Merge(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RegressError> for TiltError {
    fn from(e: RegressError) -> Self {
        TiltError::Merge(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let cases = vec![
            TiltError::BadSpec { detail: "x".into() },
            TiltError::OutOfOrder { detail: "y".into() },
            TiltError::UnknownLevel { level: 9, count: 4 },
            TiltError::Merge(RegressError::NoInputs),
        ];
        for c in &cases {
            assert!(!c.to_string().is_empty());
        }
        assert!(cases[3].source().is_some());
        assert!(cases[0].source().is_none());
    }
}
