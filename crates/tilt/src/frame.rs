//! The tilt time frame proper: slots, ingestion, promotion, queries.

use crate::error::TiltError;
use crate::mergeable::TimeMergeable;
use crate::scale::TiltSpec;
use crate::Result;
use std::collections::VecDeque;

/// One registered slot: a measure covering one unit of its level.
#[derive(Debug, Clone, PartialEq)]
pub struct TiltSlot<M> {
    /// Absolute unit index at this slot's level (unit 0 starts the epoch).
    pub unit: u64,
    /// The slot's measure.
    pub measure: M,
}

/// Where a late amendment landed inside a frame.
///
/// Returned by [`TiltFrame::amend_slot`]: the finest unit being corrected
/// may still sit at the finest level, may already have been promoted into a
/// coarser slot, or may have aged out of the frame entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmendOutcome {
    /// The amendment was applied to the retained slot covering the unit.
    Amended {
        /// Level index of the slot that absorbed the amendment.
        level: usize,
        /// The slot's unit index *at that level*.
        slot_unit: u64,
    },
    /// The unit has expired from the coarsest level; nothing to amend.
    Expired,
}

/// Occupancy and compression statistics of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TiltStats {
    /// Slots currently held across all levels.
    pub retained_slots: usize,
    /// Maximum slots the spec can hold.
    pub capacity_slots: usize,
    /// Finest units ingested so far.
    pub ingested_units: u64,
    /// Finest units that have aged out of the coarsest level entirely.
    pub expired_units: u64,
}

/// A tilt time frame over measures of type `M`.
///
/// Push one measure per finest unit with [`TiltFrame::push`]; the frame
/// cascades promotions as coarser units complete and ages the oldest data
/// out of the coarsest level. All merge operations go through
/// [`TimeMergeable::merge_run`], so with ISB measures every slot at every
/// level holds the *exact* regression of its span (Section 4.5: "regression
/// always keeps up to the most recent granularity time unit at each
/// layer").
#[derive(Debug, Clone)]
pub struct TiltFrame<M> {
    spec: TiltSpec,
    /// One deque per level, oldest slot first.
    levels: Vec<VecDeque<TiltSlot<M>>>,
    next_unit: u64,
    expired_units: u64,
}

impl<M: TimeMergeable> TiltFrame<M> {
    /// Creates an empty frame for `spec`.
    pub fn new(spec: TiltSpec) -> Self {
        let levels = (0..spec.num_levels()).map(|_| VecDeque::new()).collect();
        TiltFrame {
            spec,
            levels,
            next_unit: 0,
            expired_units: 0,
        }
    }

    /// Reconstructs a frame from previously captured state — the
    /// checkpoint/restore seam. `levels` holds each level's slots oldest
    /// first, exactly as [`slots`](Self::slots) reported them;
    /// `next_unit` and `expired_units` are the values
    /// [`next_unit`](Self::next_unit) and [`stats`](Self::stats)
    /// reported. The caller is trusted on slot contents (measures are
    /// opaque here), but the shape is validated so a torn capture cannot
    /// build a frame that later panics.
    ///
    /// # Errors
    /// [`TiltError::BadSpec`] when `levels` does not match the spec's
    /// level count, a level holds more slots than its group size allows,
    /// or slots are out of order within a level.
    pub fn from_parts(
        spec: TiltSpec,
        levels: Vec<Vec<TiltSlot<M>>>,
        next_unit: u64,
        expired_units: u64,
    ) -> Result<Self> {
        if levels.len() != spec.num_levels() {
            return Err(TiltError::BadSpec {
                detail: format!(
                    "frame capture has {} levels, spec defines {}",
                    levels.len(),
                    spec.num_levels()
                ),
            });
        }
        for (idx, level) in levels.iter().enumerate() {
            let group = spec.levels()[idx].group;
            if level.len() > group {
                return Err(TiltError::BadSpec {
                    detail: format!(
                        "level {idx} capture holds {} slots, group size is {group}",
                        level.len()
                    ),
                });
            }
            if level.windows(2).any(|w| w[0].unit >= w[1].unit) {
                return Err(TiltError::BadSpec {
                    detail: format!("level {idx} capture slots are not strictly increasing"),
                });
            }
        }
        Ok(TiltFrame {
            spec,
            levels: levels.into_iter().map(VecDeque::from).collect(),
            next_unit,
            expired_units,
        })
    }

    /// The frame's specification.
    #[inline]
    pub fn spec(&self) -> &TiltSpec {
        &self.spec
    }

    /// The finest-unit index the next [`push`](Self::push) must cover.
    #[inline]
    pub fn next_unit(&self) -> u64 {
        self.next_unit
    }

    /// Slots at `level`, oldest first.
    ///
    /// # Errors
    /// [`TiltError::UnknownLevel`] for an out-of-range level.
    pub fn slots(&self, level: usize) -> Result<&VecDeque<TiltSlot<M>>> {
        self.levels.get(level).ok_or(TiltError::UnknownLevel {
            level,
            count: self.levels.len(),
        })
    }

    /// Ingests the measure of the next finest unit and cascades promotion.
    ///
    /// The caller supplies measures in strict unit order; contiguity with
    /// the previous slot is validated through [`TimeMergeable::continues`].
    ///
    /// # Errors
    /// * [`TiltError::OutOfOrder`] when the measure does not continue the
    ///   frame's newest finest slot.
    /// * Merge errors from promotion.
    pub fn push(&mut self, measure: M) -> Result<()> {
        if let Some(last) = self.levels[0].back() {
            if !last.measure.continues(&measure) {
                return Err(TiltError::OutOfOrder {
                    detail: format!("finest unit {} does not continue the frame", self.next_unit),
                });
            }
        }
        let unit = self.next_unit;
        self.levels[0].push_back(TiltSlot { unit, measure });
        self.next_unit += 1;
        self.cascade(0)?;
        Ok(())
    }

    /// Promotes full groups from `level` upward.
    fn cascade(&mut self, level: usize) -> Result<()> {
        let group = self.spec.levels()[level].group;
        let is_top = level + 1 == self.levels.len();
        if is_top {
            // The coarsest level retains `group` slots and ages out its
            // oldest on overflow: the frame deliberately forgets the
            // distant past.
            let fine_per = self.spec.finest_units_per(level)?;
            while self.levels[level].len() > group {
                self.levels[level].pop_front();
                self.expired_units += fine_per;
            }
            return Ok(());
        }
        if self.levels[level].len() < group {
            return Ok(());
        }
        debug_assert_eq!(self.levels[level].len(), group);
        // Merge the whole group into one unit of the next level.
        let run: Vec<M> = self.levels[level]
            .iter()
            .map(|s| s.measure.clone())
            .collect();
        let merged = M::merge_run(&run)?;
        let coarse_unit = self.levels[level].front().expect("non-empty").unit / group as u64;
        self.levels[level].clear();
        self.levels[level + 1].push_back(TiltSlot {
            unit: coarse_unit,
            measure: merged,
        });
        self.cascade(level + 1)
    }

    /// Amends the retained slot covering finest unit `fine_unit` in place.
    ///
    /// Tilt promotion merges contiguous segments (Theorem 3.3), and the
    /// merged measure is a *function of its constituents* — so a correction
    /// to one finest unit can be folded into whichever slot that unit lives
    /// in today, whether it is still at the finest level or already
    /// promoted into an hour/day/month slot. `f` receives the current slot
    /// measure and returns the corrected one (for ISB measures, typically
    /// [`regcube_regress::Isb::amend_tick`] — exact by linearity of the
    /// LSE fit).
    ///
    /// Every level covers a disjoint span of finest units, so the unit is
    /// found in at most one slot. Units that have aged out of the coarsest
    /// level return [`AmendOutcome::Expired`] without calling `f`.
    ///
    /// # Errors
    /// * [`TiltError::OutOfOrder`] when `fine_unit` has not been pushed
    ///   yet (`fine_unit >= next_unit`) — amendment never extends history.
    /// * Whatever `f` returns.
    pub fn amend_slot<F>(&mut self, fine_unit: u64, f: F) -> Result<AmendOutcome>
    where
        F: FnOnce(&M) -> Result<M>,
    {
        if fine_unit >= self.next_unit {
            return Err(TiltError::OutOfOrder {
                detail: format!(
                    "cannot amend finest unit {fine_unit}: frame has only ingested {}",
                    self.next_unit
                ),
            });
        }
        for level in 0..self.levels.len() {
            let per = self.spec.finest_units_per(level)?;
            let slot_unit = fine_unit / per;
            if let Some(slot) = self.levels[level].iter_mut().find(|s| s.unit == slot_unit) {
                slot.measure = f(&slot.measure)?;
                return Ok(AmendOutcome::Amended { level, slot_unit });
            }
        }
        Ok(AmendOutcome::Expired)
    }

    /// Merges all slots currently registered at `level` into one measure
    /// (e.g. "the last day with the precision of hour"), or `None` when
    /// the level is empty.
    ///
    /// # Errors
    /// [`TiltError::UnknownLevel`] / merge errors.
    pub fn merge_level(&self, level: usize) -> Result<Option<M>> {
        let slots = self.slots(level)?;
        if slots.is_empty() {
            return Ok(None);
        }
        let run: Vec<M> = slots.iter().map(|s| s.measure.clone()).collect();
        Ok(Some(M::merge_run(&run)?))
    }

    /// Merges the most recent `k` slots of `level` ("the last 2 hours at
    /// hour precision"); fewer than `k` slots merge whatever is present;
    /// `None` when the level is empty or `k == 0`.
    ///
    /// # Errors
    /// [`TiltError::UnknownLevel`] / merge errors.
    pub fn merge_recent(&self, level: usize, k: usize) -> Result<Option<M>> {
        let slots = self.slots(level)?;
        if slots.is_empty() || k == 0 {
            return Ok(None);
        }
        let take = k.min(slots.len());
        let run: Vec<M> = slots
            .iter()
            .skip(slots.len() - take)
            .map(|s| s.measure.clone())
            .collect();
        Ok(Some(M::merge_run(&run)?))
    }

    /// Merges the frame's **entire retained history** into one measure,
    /// walking coarsest → finest (oldest data first). `None` for an empty
    /// frame.
    ///
    /// # Errors
    /// Merge errors (cannot occur for measures ingested through
    /// [`push`](Self::push)).
    pub fn merge_all(&self) -> Result<Option<M>> {
        let run: Vec<M> = self
            .levels
            .iter()
            .rev()
            .flat_map(|dq| dq.iter().map(|s| s.measure.clone()))
            .collect();
        if run.is_empty() {
            return Ok(None);
        }
        Ok(Some(M::merge_run(&run)?))
    }

    /// All retained measures ordered oldest → newest (coarsest level
    /// first), with their level index — the analyst's full observation
    /// deck.
    pub fn timeline(&self) -> Vec<(usize, &TiltSlot<M>)> {
        let mut out = Vec::with_capacity(self.retained_slots());
        for (level, dq) in self.levels.iter().enumerate().rev() {
            for slot in dq {
                out.push((level, slot));
            }
        }
        out
    }

    /// Number of slots currently held.
    pub fn retained_slots(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// Occupancy/compression statistics.
    pub fn stats(&self) -> TiltStats {
        TiltStats {
            retained_slots: self.retained_slots(),
            capacity_slots: self.spec.capacity_slots(),
            ingested_units: self.next_unit,
            expired_units: self.expired_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mergeable::CountSum;
    use crate::scale::TiltSpec;
    use regcube_regress::{Isb, TimeSeries};

    /// A small 3-level spec: 3 fine units per mid, 4 mid per coarse,
    /// retain 2 coarse.
    fn small_spec() -> TiltSpec {
        TiltSpec::new(vec![("fine", 3), ("mid", 4), ("coarse", 2)]).unwrap()
    }

    fn unit_isb(u: u64, ticks_per_unit: i64) -> Isb {
        let start = u as i64 * ticks_per_unit;
        let series =
            TimeSeries::from_fn(start, start + ticks_per_unit - 1, |t| 0.1 * t as f64 + 1.0)
                .unwrap();
        Isb::fit(&series).unwrap()
    }

    #[test]
    fn promotion_cascades_on_boundaries() {
        let mut f: TiltFrame<CountSum> = TiltFrame::new(small_spec());
        // 3 fine units complete one mid unit.
        for u in 0..3 {
            f.push(CountSum::unit(u, 1.0)).unwrap();
        }
        assert_eq!(f.slots(0).unwrap().len(), 0, "fine level cleared");
        assert_eq!(f.slots(1).unwrap().len(), 1, "one mid slot promoted");
        let mid = &f.slots(1).unwrap()[0];
        assert_eq!(mid.measure.units, 3);
        assert_eq!(mid.unit, 0);

        // 12 fine units complete one coarse unit (4 mids).
        for u in 3..12 {
            f.push(CountSum::unit(u, 1.0)).unwrap();
        }
        assert_eq!(f.slots(1).unwrap().len(), 0);
        assert_eq!(f.slots(2).unwrap().len(), 1);
        assert_eq!(f.slots(2).unwrap()[0].measure.units, 12);
    }

    #[test]
    fn coarsest_level_ages_out() {
        let mut f: TiltFrame<CountSum> = TiltFrame::new(small_spec());
        // Capacity at coarse level is 2; the third coarse unit (36 fine
        // units) evicts the first.
        for u in 0..36 {
            f.push(CountSum::unit(u, 1.0)).unwrap();
        }
        assert_eq!(
            f.slots(2).unwrap().len(),
            2,
            "third coarse slot evicted the first"
        );
        let stats = f.stats();
        assert_eq!(stats.ingested_units, 36);
        assert_eq!(stats.expired_units, 12);
        assert!(stats.retained_slots <= stats.capacity_slots);
    }

    #[test]
    fn out_of_order_pushes_are_rejected() {
        let mut f: TiltFrame<CountSum> = TiltFrame::new(small_spec());
        f.push(CountSum::unit(0, 1.0)).unwrap();
        let err = f.push(CountSum::unit(5, 1.0)).unwrap_err();
        assert!(matches!(err, TiltError::OutOfOrder { .. }));
    }

    #[test]
    fn isb_frame_tracks_exact_regressions() {
        // Push 11 unit-ISBs (5 ticks each) and compare merge_all against a
        // brute-force fit over all 55 ticks.
        let mut f: TiltFrame<Isb> = TiltFrame::new(small_spec());
        for u in 0..11 {
            f.push(unit_isb(u, 5)).unwrap();
        }
        let merged = f.merge_all().unwrap().unwrap();
        let full = TimeSeries::from_fn(0, 54, |t| 0.1 * t as f64 + 1.0).unwrap();
        let direct = Isb::fit(&full).unwrap();
        assert!(merged.approx_eq(&direct, 1e-9), "{merged} vs {direct}");
    }

    #[test]
    fn merge_level_exposes_the_observation_deck() {
        let mut f: TiltFrame<Isb> = TiltFrame::new(small_spec());
        for u in 0..5 {
            f.push(unit_isb(u, 4)).unwrap();
        }
        // 5 units: 3 promoted to one mid slot; 2 remain fine.
        assert_eq!(f.slots(0).unwrap().len(), 2);
        assert_eq!(f.slots(1).unwrap().len(), 1);
        let fine = f.merge_level(0).unwrap().unwrap();
        assert_eq!(fine.interval(), (12, 19));
        let mid = f.merge_level(1).unwrap().unwrap();
        assert_eq!(mid.interval(), (0, 11));
        assert!(f.merge_level(2).unwrap().is_none());
        assert!(f.merge_level(9).is_err());
    }

    #[test]
    fn timeline_is_oldest_first_and_contiguous() {
        let mut f: TiltFrame<Isb> = TiltFrame::new(small_spec());
        for u in 0..8 {
            f.push(unit_isb(u, 3)).unwrap();
        }
        let timeline = f.timeline();
        assert_eq!(timeline.len(), f.retained_slots());
        for pair in timeline.windows(2) {
            let (_, a) = pair[0];
            let (_, b) = pair[1];
            assert_eq!(b.measure.start(), a.measure.end() + 1);
        }
    }

    #[test]
    fn empty_frame_queries() {
        let f: TiltFrame<Isb> = TiltFrame::new(small_spec());
        assert!(f.merge_all().unwrap().is_none());
        assert!(f.merge_recent(0, 3).unwrap().is_none());
        assert_eq!(f.retained_slots(), 0);
        assert_eq!(f.next_unit(), 0);
        assert!(f.slots(3).is_err());
    }

    #[test]
    fn merge_recent_takes_the_newest_slots() {
        let mut f: TiltFrame<Isb> = TiltFrame::new(small_spec());
        // 2 fine slots (after one promotion at 3): push 5 units.
        for u in 0..5 {
            f.push(unit_isb(u, 4)).unwrap();
        }
        assert_eq!(f.slots(0).unwrap().len(), 2);
        let last_one = f.merge_recent(0, 1).unwrap().unwrap();
        assert_eq!(last_one.interval(), (16, 19));
        let last_two = f.merge_recent(0, 2).unwrap().unwrap();
        assert_eq!(last_two.interval(), (12, 19));
        // k beyond the population merges everything at the level.
        let all = f.merge_recent(0, 99).unwrap().unwrap();
        assert_eq!(all.interval(), (12, 19));
        assert!(f.merge_recent(0, 0).unwrap().is_none());
    }

    #[test]
    fn amend_slot_finds_the_unit_at_any_level() {
        // Mirror frame (never amended) rebuilt from patched inputs proves
        // amend_slot ≡ ingesting the corrected series from scratch.
        let tpu = 5i64;
        let delta = 3.25;
        for late_unit in [0u64, 2, 3, 7] {
            let mut amended: TiltFrame<Isb> = TiltFrame::new(small_spec());
            let mut rebuilt: TiltFrame<Isb> = TiltFrame::new(small_spec());
            for u in 0..9 {
                amended.push(unit_isb(u, tpu)).unwrap();
                let mut isb = unit_isb(u, tpu);
                if u == late_unit {
                    isb = isb.amend_tick(u as i64 * tpu + 1, delta).unwrap();
                }
                rebuilt.push(isb).unwrap();
            }
            let outcome = amended
                .amend_slot(late_unit, |m| {
                    m.amend_tick(late_unit as i64 * tpu + 1, delta)
                        .map_err(TiltError::Merge)
                })
                .unwrap();
            assert!(matches!(outcome, AmendOutcome::Amended { .. }));
            let a = amended.timeline();
            let b = rebuilt.timeline();
            assert_eq!(a.len(), b.len());
            for ((la, sa), (lb, sb)) in a.iter().zip(b.iter()) {
                assert_eq!(la, lb);
                assert_eq!(sa.unit, sb.unit);
                assert!(
                    sa.measure.approx_eq(&sb.measure, 1e-9),
                    "unit {late_unit}: {} vs {}",
                    sa.measure,
                    sb.measure
                );
            }
        }
    }

    #[test]
    fn amend_slot_reports_promoted_slot_coordinates() {
        let mut f: TiltFrame<Isb> = TiltFrame::new(small_spec());
        for u in 0..7 {
            f.push(unit_isb(u, 4)).unwrap();
        }
        // Units 0..3 were promoted to mid slot 0; unit 6 is still fine.
        let promoted = f.amend_slot(1, |m| Ok(*m)).unwrap();
        assert_eq!(
            promoted,
            AmendOutcome::Amended {
                level: 1,
                slot_unit: 0
            }
        );
        let fine = f.amend_slot(6, |m| Ok(*m)).unwrap();
        assert_eq!(
            fine,
            AmendOutcome::Amended {
                level: 0,
                slot_unit: 6
            }
        );
    }

    #[test]
    fn amend_slot_expired_and_future_units() {
        let mut f: TiltFrame<CountSum> = TiltFrame::new(small_spec());
        for u in 0..36 {
            f.push(CountSum::unit(u, 1.0)).unwrap();
        }
        // Units 0..12 expired out of the coarsest level.
        assert_eq!(f.amend_slot(3, |m| Ok(*m)).unwrap(), AmendOutcome::Expired);
        // Future units are a caller error, not silence.
        assert!(f.amend_slot(36, |m| Ok(*m)).is_err());
    }

    #[test]
    fn from_parts_round_trips_a_live_frame() {
        let mut f: TiltFrame<Isb> = TiltFrame::new(small_spec());
        for u in 0..17 {
            f.push(unit_isb(u, 5)).unwrap();
        }
        let levels: Vec<Vec<TiltSlot<Isb>>> = (0..small_spec().num_levels())
            .map(|l| f.slots(l).unwrap().iter().cloned().collect())
            .collect();
        let stats = f.stats();
        let rebuilt =
            TiltFrame::from_parts(small_spec(), levels, f.next_unit(), stats.expired_units)
                .unwrap();
        assert_eq!(rebuilt.next_unit(), f.next_unit());
        assert_eq!(rebuilt.stats(), stats);
        let (a, b) = (f.timeline(), rebuilt.timeline());
        assert_eq!(a.len(), b.len());
        for ((la, sa), (lb, sb)) in a.iter().zip(b.iter()) {
            assert_eq!((la, sa), (lb, sb));
        }
        // Both frames keep evolving identically.
        let mut f2 = rebuilt;
        let mut f1 = f;
        for u in 17..30 {
            f1.push(unit_isb(u, 5)).unwrap();
            f2.push(unit_isb(u, 5)).unwrap();
        }
        assert_eq!(f1.timeline(), f2.timeline());
    }

    #[test]
    fn from_parts_rejects_malformed_captures() {
        // Wrong level count.
        assert!(
            TiltFrame::<Isb>::from_parts(small_spec(), vec![Vec::new(), Vec::new()], 0, 0).is_err()
        );
        // A level over its group size.
        let over = vec![
            (0..4)
                .map(|u| TiltSlot {
                    unit: u,
                    measure: unit_isb(u, 5),
                })
                .collect::<Vec<_>>(),
            Vec::new(),
            Vec::new(),
        ];
        assert!(TiltFrame::<Isb>::from_parts(small_spec(), over, 4, 0).is_err());
        // Out-of-order slots within a level.
        let disordered = vec![
            vec![
                TiltSlot {
                    unit: 2,
                    measure: unit_isb(2, 5),
                },
                TiltSlot {
                    unit: 1,
                    measure: unit_isb(1, 5),
                },
            ],
            Vec::new(),
            Vec::new(),
        ];
        assert!(TiltFrame::<Isb>::from_parts(small_spec(), disordered, 3, 0).is_err());
    }

    #[test]
    fn figure4_frame_capacity_is_71() {
        let mut f: TiltFrame<CountSum> = TiltFrame::new(TiltSpec::paper_figure4());
        // Push a full year of quarters; retained slots never exceed 71.
        let mut max_retained = 0;
        for u in 0..(366 * 24 * 4) {
            f.push(CountSum::unit(u, 1.0)).unwrap();
            max_retained = max_retained.max(f.retained_slots());
        }
        assert!(max_retained <= 71, "retained {max_retained} > 71");
        // The frame's span covers more than a year, so nothing ingested in
        // the last year has fully expired in a 12-"month" retention of
        // 31-day months... but some early data has:
        let stats = f.stats();
        assert_eq!(stats.ingested_units, 35_136);
        assert_eq!(stats.capacity_slots, 71);
    }
}
