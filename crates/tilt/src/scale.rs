//! Tilt-frame specifications: the granularity ladder.

use crate::error::TiltError;
use crate::Result;

/// One granularity level of a tilt frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSpec {
    /// Human-readable unit name ("quarter", "hour", …).
    pub name: String,
    /// Capacity in slots. For every level but the coarsest this is also
    /// the promotion group: when `group` slots complete, they merge into
    /// one slot of the next level. The coarsest level's `group` is pure
    /// retention — its oldest slot ages out on overflow.
    pub group: usize,
}

/// A tilt time frame specification: levels ordered finest → coarsest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TiltSpec {
    levels: Vec<LevelSpec>,
}

impl TiltSpec {
    /// Builds a spec from `(name, group)` pairs ordered finest → coarsest.
    ///
    /// # Errors
    /// [`TiltError::BadSpec`] when no levels are given or any group is
    /// smaller than 2 (a group of 1 would promote every slot immediately
    /// and the level could never be observed).
    pub fn new(levels: Vec<(&str, usize)>) -> Result<Self> {
        if levels.is_empty() {
            return Err(TiltError::BadSpec {
                detail: "tilt spec needs at least one level".into(),
            });
        }
        if let Some((name, g)) = levels.iter().find(|(_, g)| *g < 2) {
            return Err(TiltError::BadSpec {
                detail: format!("level {name} has group {g}; groups must be >= 2"),
            });
        }
        Ok(TiltSpec {
            levels: levels
                .into_iter()
                .map(|(name, group)| LevelSpec {
                    name: name.to_string(),
                    group,
                })
                .collect(),
        })
    }

    /// The paper's Figure 4 frame: 4 quarters, 24 hours, 31 days,
    /// 12 months.
    pub fn paper_figure4() -> TiltSpec {
        TiltSpec::new(vec![
            ("quarter", 4),
            ("hour", 24),
            ("day", 31),
            ("month", 12),
        ])
        .expect("static spec is valid")
    }

    /// The levels, finest first.
    #[inline]
    pub fn levels(&self) -> &[LevelSpec] {
        &self.levels
    }

    /// Number of granularity levels.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Maximum number of retained slots: `Σ group`.
    /// Figure 4: `4 + 24 + 31 + 12 = 71`.
    pub fn capacity_slots(&self) -> usize {
        self.levels.iter().map(|l| l.group).sum()
    }

    /// How many finest units one unit of `level` spans:
    /// `∏_{i < level} group_i`.
    pub fn finest_units_per(&self, level: usize) -> Result<u64> {
        if level >= self.levels.len() {
            return Err(TiltError::UnknownLevel {
                level,
                count: self.levels.len(),
            });
        }
        Ok(self.levels[..level]
            .iter()
            .map(|l| l.group as u64)
            .product())
    }

    /// Total finest units the full frame spans when every level is at
    /// capacity. Figure 4: `4 + 24·4 + 31·96 + 12·2976 = 38,788` quarters
    /// — more than a flat year because the month level alone retains 12
    /// months of 31 days.
    pub fn span_finest_units(&self) -> u64 {
        let mut span = 0u64;
        let mut per_unit = 1u64;
        for l in &self.levels {
            span += per_unit * l.group as u64;
            per_unit *= l.group as u64;
        }
        span
    }

    /// The flat-registration slot count the paper compares against: the
    /// number of finest units in `flat_span` (e.g. a 366-day year of
    /// quarters = 35,136), divided by the frame's capacity to obtain the
    /// saving ratio.
    pub fn compression_ratio(&self, flat_slots: u64) -> f64 {
        flat_slots as f64 / self.capacity_slots() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_spec_matches_example3() {
        let spec = TiltSpec::paper_figure4();
        assert_eq!(spec.num_levels(), 4);
        assert_eq!(spec.capacity_slots(), 71);
        // Example 3: a year registered flat at quarter granularity needs
        // 366 * 24 * 4 = 35,136 units; the tilt frame registers 71 —
        // "a saving of about 495 times".
        let flat = 366 * 24 * 4;
        assert_eq!(flat, 35_136);
        let ratio = spec.compression_ratio(flat);
        assert!((ratio - 494.87).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn unit_spans() {
        let spec = TiltSpec::paper_figure4();
        assert_eq!(spec.finest_units_per(0).unwrap(), 1); // quarter
        assert_eq!(spec.finest_units_per(1).unwrap(), 4); // hour
        assert_eq!(spec.finest_units_per(2).unwrap(), 96); // day
        assert_eq!(spec.finest_units_per(3).unwrap(), 2976); // "month"
        assert!(spec.finest_units_per(4).is_err());
        assert_eq!(spec.span_finest_units(), 4 + 96 + 2976 + 35_712);
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        assert!(TiltSpec::new(vec![]).is_err());
        assert!(TiltSpec::new(vec![("a", 1)]).is_err());
        assert!(TiltSpec::new(vec![("a", 0)]).is_err());
        assert!(TiltSpec::new(vec![("a", 2)]).is_ok());
    }

    #[test]
    fn level_names_are_kept() {
        let spec = TiltSpec::paper_figure4();
        let names: Vec<&str> = spec.levels().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["quarter", "hour", "day", "month"]);
    }
}
