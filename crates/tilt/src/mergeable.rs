//! The measure contract of the tilt frame.

use crate::Result;
use regcube_regress::{aggregate, Isb};

/// A measure that can merge a *time-contiguous* run of itself into one
/// value — the operation promotion performs when fine slots complete a
/// coarser unit.
///
/// Implementations must be **lossless with respect to their own
/// semantics**: merging `[a, b]` then `c` must equal merging `[a, b, c]`
/// (associativity along the timeline), which the frame's property tests
/// verify for the provided implementations.
pub trait TimeMergeable: Sized + Clone {
    /// Merges a non-empty, time-ordered, contiguous run.
    ///
    /// # Errors
    /// Implementation-defined; for ISB, non-contiguous intervals.
    fn merge_run(run: &[Self]) -> Result<Self>;

    /// `true` when `next` directly continues `self` in time. The frame
    /// checks this on every push to guarantee merge preconditions.
    fn continues(&self, next: &Self) -> bool;
}

impl TimeMergeable for Isb {
    fn merge_run(run: &[Self]) -> Result<Self> {
        Ok(aggregate::merge_time(run)?)
    }

    fn continues(&self, next: &Self) -> bool {
        next.start() == self.end() + 1
    }
}

/// A trivial counting measure: tracks how many finest units a slot spans
/// plus a value sum. Useful for tests and as a template for custom
/// measures (the paper's footnote 1: cubes may carry other measures, such
/// as total power usage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountSum {
    /// Index of the first finest unit covered.
    pub start_unit: u64,
    /// Number of finest units covered.
    pub units: u64,
    /// Sum of values over the covered span.
    pub sum: f64,
}

impl CountSum {
    /// A one-unit measure.
    pub fn unit(start_unit: u64, sum: f64) -> Self {
        CountSum {
            start_unit,
            units: 1,
            sum,
        }
    }
}

impl TimeMergeable for CountSum {
    fn merge_run(run: &[Self]) -> Result<Self> {
        let first = run.first().ok_or(crate::TiltError::Merge(
            regcube_regress::RegressError::NoInputs,
        ))?;
        let mut acc = *first;
        for next in &run[1..] {
            if !acc.continues(next) {
                return Err(crate::TiltError::OutOfOrder {
                    detail: format!(
                        "unit {} does not follow span [{}, {})",
                        next.start_unit,
                        acc.start_unit,
                        acc.start_unit + acc.units
                    ),
                });
            }
            acc.units += next.units;
            acc.sum += next.sum;
        }
        Ok(acc)
    }

    fn continues(&self, next: &Self) -> bool {
        next.start_unit == self.start_unit + self.units
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regcube_regress::TimeSeries;

    #[test]
    fn isb_merge_run_uses_theorem33() {
        let z = TimeSeries::from_fn(0, 59, |t| 0.5 + 0.02 * t as f64).unwrap();
        let parts = z.split_into(15).unwrap();
        let isbs: Vec<Isb> = parts.iter().map(|p| Isb::fit(p).unwrap()).collect();
        assert!(isbs[0].continues(&isbs[1]));
        assert!(!isbs[0].continues(&isbs[2]));
        let merged = Isb::merge_run(&isbs).unwrap();
        assert!(merged.approx_eq(&Isb::fit(&z).unwrap(), 1e-9));
    }

    #[test]
    fn isb_merge_run_rejects_gaps() {
        let a = Isb::new(0, 9, 1.0, 0.0).unwrap();
        let b = Isb::new(20, 29, 1.0, 0.0).unwrap();
        assert!(Isb::merge_run(&[a, b]).is_err());
    }

    #[test]
    fn count_sum_accumulates() {
        let run = vec![
            CountSum::unit(0, 1.5),
            CountSum::unit(1, 2.5),
            CountSum::unit(2, -1.0),
        ];
        let merged = CountSum::merge_run(&run).unwrap();
        assert_eq!(merged.units, 3);
        assert_eq!(merged.sum, 3.0);
        assert_eq!(merged.start_unit, 0);

        let gap = vec![CountSum::unit(0, 1.0), CountSum::unit(5, 1.0)];
        assert!(CountSum::merge_run(&gap).is_err());
        assert!(CountSum::merge_run(&[]).is_err());
    }
}
