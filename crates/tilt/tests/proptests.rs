//! Property tests: tilt-frame promotion must be lossless for ISB measures
//! and bounded in retention for any measure.

use proptest::prelude::*;
use regcube_regress::{Isb, TimeSeries};
use regcube_tilt::mergeable::CountSum;
use regcube_tilt::{TiltFrame, TiltSpec};

fn spec_strategy() -> impl Strategy<Value = TiltSpec> {
    // 2-4 levels, groups 2..6.
    prop::collection::vec(2usize..6, 2..5).prop_map(|groups| {
        let named: Vec<(String, usize)> = groups
            .iter()
            .enumerate()
            .map(|(i, &g)| (format!("l{i}"), g))
            .collect();
        TiltSpec::new(named.iter().map(|(n, g)| (n.as_str(), *g)).collect()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any number of pushes, merging the whole frame reproduces the
    /// exact OLS fit of the *retained* span of the underlying series.
    #[test]
    fn merge_all_is_exact_over_retained_span(
        spec in spec_strategy(),
        values in prop::collection::vec(-50.0..50.0f64, 8..120),
        ticks_per_unit in 2i64..6,
    ) {
        let units = values.len();
        // Build one long series: unit u covers ticks [u*tpu, (u+1)*tpu).
        let total_ticks = units as i64 * ticks_per_unit;
        let series = TimeSeries::from_fn(0, total_ticks - 1, |t| {
            let u = (t / ticks_per_unit) as usize;
            values[u] + 0.01 * t as f64
        }).unwrap();

        let mut frame: TiltFrame<Isb> = TiltFrame::new(spec);
        for u in 0..units as i64 {
            let w = series.window(u * ticks_per_unit, (u + 1) * ticks_per_unit - 1).unwrap();
            frame.push(Isb::fit(&w).unwrap()).unwrap();
        }

        if let Some(merged) = frame.merge_all().unwrap() {
            // The retained span may exclude expired old ticks.
            let direct = Isb::fit(
                &series.window(merged.start(), merged.end()).unwrap()
            ).unwrap();
            prop_assert!(merged.approx_eq(&direct, 1e-6), "{merged} vs {direct}");
            prop_assert_eq!(merged.end(), total_ticks - 1, "newest data always retained");
        }
    }

    /// Retention never exceeds the spec capacity, and the timeline stays
    /// contiguous oldest -> newest.
    #[test]
    fn retention_is_bounded_and_contiguous(
        spec in spec_strategy(),
        units in 1u64..500,
    ) {
        let mut frame: TiltFrame<CountSum> = TiltFrame::new(spec.clone());
        for u in 0..units {
            frame.push(CountSum::unit(u, 1.0)).unwrap();
            prop_assert!(frame.retained_slots() <= spec.capacity_slots());
        }
        let stats = frame.stats();
        prop_assert_eq!(stats.ingested_units, units);
        // Conservation: retained units + expired units == ingested units.
        let retained_units: u64 = frame
            .timeline()
            .iter()
            .map(|(_, slot)| slot.measure.units)
            .sum();
        prop_assert_eq!(retained_units + stats.expired_units, units);
        // Contiguity of the retained timeline.
        let tl = frame.timeline();
        for pair in tl.windows(2) {
            let (_, a) = pair[0];
            let (_, b) = pair[1];
            prop_assert_eq!(b.measure.start_unit, a.measure.start_unit + a.measure.units);
        }
    }

    /// Pushing in order never fails; pushing a gap always fails.
    #[test]
    fn gap_detection(spec in spec_strategy(), skip in 1u64..10) {
        let mut frame: TiltFrame<CountSum> = TiltFrame::new(spec);
        frame.push(CountSum::unit(0, 0.0)).unwrap();
        let bad = CountSum::unit(1 + skip, 0.0);
        prop_assert!(frame.push(bad).is_err());
        // The failed push must not corrupt the frame.
        prop_assert!(frame.push(CountSum::unit(1, 0.0)).is_ok());
    }
}
